"""Sharded serving: a pool of engine replicas behind one front door.

One :class:`~repro.serve.scheduler.MicroBatchScheduler` converts
per-call speed into per-replica throughput; this module converts
per-replica throughput into *pool* throughput.  An
:class:`EngineWorkerPool` runs N engine replicas, each behind its own
scheduler, and three things decide what happens to an incoming request:

* a **router** (:class:`Router` policy — :class:`RoundRobinRouter`,
  :class:`LeastOutstandingRouter`, or :class:`KeyAffinityRouter`)
  picks which replica should serve it;
* **admission control** bounds each replica's outstanding work at
  ``max_queue``; a request that no admissible replica can take is shed
  with an explicit :class:`PoolSaturated` carrying a ``retry_after``
  estimated from the fitted affine batch-cost law
  (:class:`~repro.hpc.serving.ServingCapacityModel`) — clients back off
  instead of queueing unboundedly;
* **metrics aggregation** (:class:`PoolMetrics`) folds the per-worker
  :class:`~repro.serve.scheduler.ServeMetrics` into pool-level
  occupancy/latency/shed counters.

Routing never changes the numbers: a request's result is
bitwise-identical to calling ``engine.forecast_batch`` directly on the
micro-batch it landed in, whatever policy placed it there
(``tests/test_serve_pool.py`` asserts this for every policy).

The pool *is* a batch executor (``forecast_batch`` / ``time_steps``),
so everything that accepts an engine or a scheduler —
:class:`~repro.workflow.ensemble.EnsembleForecaster`,
:class:`~repro.workflow.hybrid.HybridWorkflow`,
:class:`~repro.serve.server.ForecastServer` — accepts a pool
unchanged, and the single-engine deployment is simply the pool of 1.

Replicas may be distinct engines or N views of one engine: inference
is read-only over model weights and the autograd switch is
thread-local, so sharing one :class:`~repro.workflow.engine.ForecastEngine`
across workers is safe (on multi-core hosts NumPy releases the GIL in
its kernels, which is where the parallel speedup comes from).
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..hpc.serving import ServingCapacityModel
from ..workflow.engine import FieldWindow, ForecastResult
from .scheduler import MicroBatchScheduler, ServedFuture, ServeMetrics

__all__ = [
    "PoolSaturated",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "KeyAffinityRouter",
    "PoolMetrics",
    "EngineWorkerPool",
]


class PoolSaturated(RuntimeError):
    """Admission control rejected a request: every admissible replica
    is at its ``max_queue`` bound.

    Attributes
    ----------
    retry_after: suggested client back-off [s] — the modelled time for
        the least-loaded admissible replica to drain one queue slot,
        from the pool's fitted batch-cost law (falls back to the
        scheduler ``max_wait`` before any batch has been observed).
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


def stable_key_hash(key) -> int:
    """Deterministic 64-bit hash of a routing key.

    ``hash(str)`` is randomised per process; sharding must instead be
    stable across runs (and documented), so affinity routing hashes the
    key's string form with BLAKE2b.
    """
    digest = hashlib.blake2b(str(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Router:
    """Pluggable policy mapping one request to a preference-ordered
    list of replicas.

    Subclasses implement :meth:`candidates`; the pool admits the
    request to the first candidate with queue room and sheds it when
    none has any.  Returning *fewer* than all workers is how a policy
    expresses a hard placement constraint (key affinity returns exactly
    one), at the price of shedding while better-placed replicas idle.

    Policies are instantiated per pool and called under the pool's
    routing lock, so they may keep unguarded mutable state (e.g. the
    round-robin cursor) but must not block.
    """

    #: registry name, also echoed in ``PoolMetrics.summary()``
    name = "base"

    #: whether the policy reads the routing key — lets callers skip
    #: computing one (content digests are not free) when it is ignored
    uses_keys = False

    _REGISTRY: Dict[str, type] = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # only classes that declare their own name register: a subclass
        # tweaking behaviour must not silently replace its parent's
        # registry entry, and an accidental name collision is an error
        name = cls.__dict__.get("name")
        if name is None:
            return
        if name in Router._REGISTRY:
            raise ValueError(
                f"router name {name!r} is already registered to "
                f"{Router._REGISTRY[name].__qualname__}")
        Router._REGISTRY[name] = cls

    @staticmethod
    def make(spec: Union[str, "Router"]) -> "Router":
        """Resolve a policy: an instance passes through, a name
        (``"round-robin"`` | ``"least-outstanding"`` | ``"key-affinity"``)
        constructs the registered class."""
        if isinstance(spec, Router):
            return spec
        try:
            return Router._REGISTRY[spec]()
        except KeyError:
            raise ValueError(
                f"unknown router {spec!r}; registered: "
                f"{sorted(Router._REGISTRY)}") from None

    def candidates(self, key, n_workers: int,
                   outstanding: Sequence[int]) -> Sequence[int]:
        """Replica indices to try, in preference order.

        Parameters
        ----------
        key: the request's routing key (may be ``None``).
        n_workers: pool width.
        outstanding: per-replica outstanding request counts, a
            consistent snapshot taken under the routing lock.
        """
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the replicas regardless of load or key.

    The classic fair policy: every replica sees the same request rate.
    When the preferred replica is full the rotation continues, so
    round-robin only sheds when the whole pool is at bound.
    """

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def candidates(self, key, n_workers, outstanding):
        start = self._cursor % n_workers
        self._cursor += 1
        return [(start + i) % n_workers for i in range(n_workers)]


class LeastOutstandingRouter(Router):
    """Send each request to the replica with the fewest outstanding
    requests (ties break toward the lowest index).

    Adapts to heterogeneous request costs and stragglers — a replica
    stuck on a slow batch naturally stops receiving traffic.  Like
    round-robin it sheds only when the whole pool is at bound.
    """

    name = "least-outstanding"

    def candidates(self, key, n_workers, outstanding):
        return sorted(range(n_workers), key=lambda i: (outstanding[i], i))


class KeyAffinityRouter(Router):
    """Shard by key: requests with equal keys always land on the same
    replica (``stable_key_hash(key) % n_workers``).

    This is the policy that keeps per-replica state effective under
    sharding — duplicate scenarios meet in one replica's queue, so
    result caches and in-flight dedup keyed on the request content
    (:func:`~repro.serve.cache.window_key`) keep their hit rates.
    Affinity is *strict*: a request whose home replica is full is shed
    even if other replicas are idle, because spilling would silently
    break the co-location guarantee.  Keyless requests fall back to
    round-robin.
    """

    name = "key-affinity"
    uses_keys = True

    def __init__(self):
        self._fallback = RoundRobinRouter()

    def candidates(self, key, n_workers, outstanding):
        if key is None:
            return self._fallback.candidates(key, n_workers, outstanding)
        return [stable_key_hash(key) % n_workers]


@dataclass
class _Worker:
    """One replica: its scheduler plus the pool's admission counters."""

    worker_id: int
    scheduler: MicroBatchScheduler
    outstanding: int = 0         # admitted, not yet completed
    submitted: int = 0           # admitted ever
    shed: int = 0                # rejected with this worker as first choice


class PoolMetrics:
    """Pool-level view over the per-worker :class:`ServeMetrics`.

    A live aggregation (not a snapshot): occupancy and counters are
    recomputed from the workers' metric logs on every access, so the
    same object stays valid for the pool's whole lifetime.  Pool
    occupancy is total requests over total engine forwards — the
    figure of merit batching must hold on to as the pool widens, since
    sharding thins each replica's queue.
    """

    def __init__(self, workers: Sequence[_Worker], pool: "EngineWorkerPool"):
        self._workers = list(workers)
        self._pool = pool

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def per_worker(self) -> List[ServeMetrics]:
        """The underlying per-replica metric logs, by worker id."""
        return [w.scheduler.metrics for w in self._workers]

    @property
    def batches(self) -> List:
        """All replicas' :class:`~repro.serve.scheduler.BatchRecord`
        logs flattened — the input to capacity-model fits."""
        return [b for m in self.per_worker for b in m.batches]

    @property
    def shed_requests(self) -> int:
        return self._pool.shed_requests

    @property
    def outstanding(self) -> int:
        return sum(w.outstanding for w in self._workers)

    @property
    def n_requests(self) -> int:
        return sum(m.n_requests for m in self.per_worker)

    @property
    def n_batches(self) -> int:
        return sum(m.n_batches for m in self.per_worker)

    @property
    def n_failed_batches(self) -> int:
        return sum(m.n_failed_batches for m in self.per_worker)

    @property
    def plan_batches(self) -> int:
        """Micro-batches served by a compiled inference plan, across
        every replica."""
        return sum(m.plan_batches for m in self.per_worker)

    @property
    def mean_occupancy(self) -> float:
        if not self.n_batches:
            return float("nan")
        return self.n_requests / self.n_batches

    @property
    def max_occupancy(self) -> int:
        return max((m.max_occupancy for m in self.per_worker), default=0)

    @property
    def engine_seconds(self) -> float:
        return sum(b.seconds for m in self.per_worker for b in m.batches)

    def _pooled_latencies(self) -> List[float]:
        return [r.latency_seconds for m in self.per_worker
                for r in m.requests]

    def latency_percentile(self, q: float) -> float:
        lat = self._pooled_latencies()
        return float(np.percentile(lat, q)) if lat else float("nan")

    def queue_percentile(self, q: float) -> float:
        qs = [r.queue_seconds for m in self.per_worker for r in m.requests]
        return float(np.percentile(qs, q)) if qs else float("nan")

    def requests_by_worker(self) -> Dict[int, int]:
        """Completed-request count per worker id — the sharding skew."""
        return {w.worker_id: w.scheduler.metrics.n_requests
                for w in self._workers}

    def shed_by_worker(self) -> Dict[int, int]:
        """Sheds attributed to each first-choice worker — under key
        affinity this is where hot-key skew shows up."""
        return {w.worker_id: w.shed for w in self._workers}

    def summary(self) -> Dict[str, float]:
        """Flat dict for logging/export; a superset of the keys of
        :meth:`ServeMetrics.summary` plus pool-only counters."""
        return {
            "workers": self.n_workers,
            "requests": self.n_requests,
            "batches": self.n_batches,
            "failed_batches": self.n_failed_batches,
            "plan_batches": self.plan_batches,
            "shed_requests": self.shed_requests,
            "outstanding": self.outstanding,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "latency_p50_ms": 1e3 * self.latency_percentile(50),
            "latency_p95_ms": 1e3 * self.latency_percentile(95),
            "queue_p50_ms": 1e3 * self.queue_percentile(50),
            "engine_seconds": self.engine_seconds,
        }


class EngineWorkerPool:
    """N engine replicas, each behind its own micro-batching scheduler.

    Parameters
    ----------
    engines: one batch executor (``forecast_batch`` + ``time_steps``)
        or a sequence of them, one per replica.  A single engine with
        ``replicas=N`` is shared by all N workers — safe, because
        inference never writes model state (see the module docstring).
        All replicas must agree on ``time_steps``.
    replicas: pool width when ``engines`` is a single executor; must
        match ``len(engines)`` when a sequence is given.
    max_batch, max_wait: per-replica scheduler flush policy
        (:class:`~repro.serve.scheduler.MicroBatchScheduler`).
    max_queue: per-replica bound on *outstanding* requests (admitted
        but not completed).  The pool's total backlog can never exceed
        ``replicas × max_queue``; beyond it requests shed with
        :class:`PoolSaturated`.
    router: a :class:`Router` instance or registered policy name.
    autostart: start each replica's worker thread (threaded mode).
        ``False`` gives the deterministic manual mode — the caller
        drives the queues with :meth:`flush` (or per-worker
        ``pool.workers[i].scheduler.step()``).
    warm_plans: compile each engine's inference plan for ``max_batch``
        at startup (replicas sharing one
        :class:`~repro.workflow.engine.ForecastEngine` share its plan
        cache, so the trace happens once per distinct engine); see
        :class:`~repro.serve.scheduler.MicroBatchScheduler`.

    Thread safety: :meth:`submit` and :meth:`forecast_batch` may be
    called from any number of client threads; routing state is guarded
    by one pool-level lock held only for the (cheap, non-blocking)
    placement decision.
    """

    def __init__(self, engines, replicas: Optional[int] = None,
                 max_batch: int = 8, max_wait: float = 0.005,
                 max_queue: int = 32,
                 router: Union[str, Router] = "least-outstanding",
                 autostart: bool = True, warm_plans: bool = False):
        if hasattr(engines, "forecast_batch"):
            engines = [engines]
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine")
        if replicas is not None:
            replicas = int(replicas)
            if replicas < 1:
                raise ValueError("replicas must be >= 1")
            if len(engines) == 1 and replicas > 1:
                engines = engines * replicas
            elif len(engines) != replicas:
                raise ValueError(
                    f"got {len(engines)} engines but replicas={replicas}")
        steps = {e.time_steps for e in engines}
        if len(steps) != 1:
            raise ValueError(
                f"all replicas must share one episode length; got {steps}")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.router = Router.make(router)
        self.shed_requests = 0
        self._retry_fit: Optional[Tuple[int, ServingCapacityModel]] = None
        self._route_lock = threading.Lock()
        self._manual = not autostart
        self._closed = False
        self.workers: Tuple[_Worker, ...] = tuple(
            _Worker(i, MicroBatchScheduler(engine, max_batch=max_batch,
                                           max_wait=max_wait,
                                           autostart=autostart,
                                           warm_plans=warm_plans))
            for i, engine in enumerate(engines))
        self.metrics = PoolMetrics(self.workers, self)

    def plan_stats(self) -> Dict[int, Dict]:
        """Per-distinct-engine plan-cache counters (replicas sharing
        one engine share its cache; keys are replica ids of the first
        worker using each engine)."""
        seen: Dict[int, Dict] = {}
        ids = set()
        for w in self.workers:
            engine = w.scheduler.engine
            if id(engine) in ids or not hasattr(engine, "plan_stats"):
                continue
            ids.add(id(engine))
            seen[w.worker_id] = engine.plan_stats()
        return seen

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    # -- batch-executor protocol ---------------------------------------
    @property
    def time_steps(self) -> int:
        return self.workers[0].scheduler.time_steps

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Submit N windows and wait for all results (executor protocol).

        Unlike :meth:`submit` this never sheds: a window rejected by
        admission control is retried after the advertised
        ``retry_after`` (after an inline :meth:`flush` in manual mode),
        because batch consumers — an ensemble mid-forecast, a hybrid
        episode — cannot meaningfully drop individual members.  Must
        not be called from a scheduler worker thread.
        """
        futures: List[ServedFuture] = []
        for reference in references:
            while True:
                try:
                    futures.append(self.submit(reference))
                    break
                except PoolSaturated as exc:
                    if self._manual:
                        self.flush()
                    else:
                        time.sleep(min(exc.retry_after, 0.1))
        if self._manual:
            self.flush()
        return [f.result() for f in futures]

    def forecast(self, reference: FieldWindow,
                 key=None) -> ForecastResult:
        """Synchronous single-request convenience wrapper."""
        future = self.submit(reference, key=key)
        if self._manual:
            self.flush()
        return future.result()

    # -- client side ----------------------------------------------------
    def submit(self, reference: FieldWindow, key=None) -> ServedFuture:
        """Route one request to a replica; returns immediately.

        Parameters
        ----------
        reference: the request window (validated by the replica's
            scheduler: episode length, shared mesh).
        key: optional routing key.  Under :class:`KeyAffinityRouter`
            equal keys are guaranteed to land on one replica; other
            policies ignore it.

        Raises
        ------
        PoolSaturated
            when every replica the policy allows is at ``max_queue``;
            the exception's ``retry_after`` is the suggested back-off.
        The returned future's ``worker_id`` records the placement.
        """
        with self._route_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            outstanding = [w.outstanding for w in self.workers]
            order = list(self.router.candidates(key, self.n_workers,
                                                outstanding))
            chosen = next((i for i in order
                           if outstanding[i] < self.max_queue), None)
            if chosen is None:
                self.shed_requests += 1
                if order:
                    self.workers[order[0]].shed += 1
                retry = self._retry_after_locked(
                    min((outstanding[i] for i in order),
                        default=self.max_queue))
                raise PoolSaturated(
                    f"pool saturated: {len(order)} admissible replica(s) "
                    f"all at max_queue={self.max_queue}; retry in "
                    f"{retry:.3f}s", retry)
            worker = self.workers[chosen]
            worker.outstanding += 1
            worker.submitted += 1
        try:
            future = worker.scheduler.submit(reference)
        except BaseException:
            with self._route_lock:
                worker.outstanding -= 1
                worker.submitted -= 1
            raise
        future.worker_id = worker.worker_id
        future.add_done_callback(
            lambda fut, w=worker: self._request_done(w))
        return future

    def _request_done(self, worker: _Worker) -> None:
        with self._route_lock:
            worker.outstanding -= 1

    #: per-replica window of recent batch records the retry-after fit
    #: looks at — bounds the work done per shed on a long-lived pool
    RETRY_FIT_WINDOW = 128

    def _retry_after_locked(self, queue_depth: int) -> float:
        """Back-off estimate: modelled time for the least-loaded
        admissible replica to free one queue slot — the wall-clock of
        its next micro-batch, which serves at most ``max_batch`` of the
        queued requests.

        Runs under the routing lock on every shed, so it must stay
        cheap: the affine fit is over a bounded window of each
        replica's most recent batches (the current serving regime,
        which is also the statistically right window) and is cached
        until new batches land.
        """
        n_batches = sum(len(w.scheduler.metrics.batches)
                        for w in self.workers)
        if n_batches == 0:
            # nothing observed yet — one flush-policy quantum
            return max(self.workers[0].scheduler.max_wait, 1e-3)
        if self._retry_fit is None or self._retry_fit[0] != n_batches:
            records = [
                b for w in self.workers
                for b in w.scheduler.metrics.batches[-self.RETRY_FIT_WINDOW:]
                if not b.failed]
            if not records:
                return max(self.workers[0].scheduler.max_wait, 1e-3)
            self._retry_fit = (n_batches,
                               ServingCapacityModel.from_batch_log(records))
        model = self._retry_fit[1]
        next_batch = min(max(queue_depth, 1),
                         self.workers[0].scheduler.max_batch)
        return model.dispatch_seconds \
            + model.per_request_seconds * next_batch

    # -- capacity -------------------------------------------------------
    def capacity_model(self) -> ServingCapacityModel:
        """Fit the per-replica affine batch-cost law from the pool's
        aggregated batch log (see
        :meth:`ServingCapacityModel.from_batch_log`)."""
        return ServingCapacityModel.from_batch_log(self.metrics.batches)

    # -- manual drive ---------------------------------------------------
    def flush(self) -> int:
        """Drain every replica's queue now; returns requests served.

        Manual-mode scheduling quantum at pool granularity; loops until
        a full sweep over the replicas serves nothing, so requests
        enqueued by completion callbacks are drained too.
        """
        total = 0
        while True:
            n = sum(w.scheduler.flush() for w in self.workers)
            if n == 0:
                return total
            total += n

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop admission, serve every replica's backlog, join workers."""
        with self._route_lock:
            self._closed = True
        for w in self.workers:
            w.scheduler.close()

    def __enter__(self) -> "EngineWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
