"""Sharded serving: a pool of engine replicas behind one front door.

One :class:`~repro.serve.scheduler.MicroBatchScheduler` converts
per-call speed into per-replica throughput; this module converts
per-replica throughput into *pool* throughput.  An
:class:`EngineWorkerPool` runs N engine replicas, each behind its own
scheduler, and three things decide what happens to an incoming request:

* a **router** (:class:`Router` policy — :class:`RoundRobinRouter`,
  :class:`LeastOutstandingRouter`, or :class:`KeyAffinityRouter`)
  picks which replica should serve it;
* **admission control** bounds each replica's outstanding work at
  ``max_queue``; a request that no admissible replica can take is shed
  with an explicit :class:`PoolSaturated` carrying a ``retry_after``
  estimated from the fitted affine batch-cost law
  (:class:`~repro.hpc.serving.ServingCapacityModel`) — clients back off
  instead of queueing unboundedly;
* **metrics aggregation** (:class:`PoolMetrics`) folds the per-worker
  :class:`~repro.serve.scheduler.ServeMetrics` into pool-level
  occupancy/latency/shed counters.

Routing never changes the numbers: a request's result is
bitwise-identical to calling ``engine.forecast_batch`` directly on the
micro-batch it landed in, whatever policy placed it there
(``tests/test_serve_pool.py`` asserts this for every policy).

The pool *is* a batch executor (``forecast_batch`` / ``time_steps``),
so everything that accepts an engine or a scheduler —
:class:`~repro.workflow.ensemble.EnsembleForecaster`,
:class:`~repro.workflow.hybrid.HybridWorkflow`,
:class:`~repro.serve.server.ForecastServer` — accepts a pool
unchanged, and the single-engine deployment is simply the pool of 1.

Replicas may be distinct engines or N views of one engine: inference
is read-only over model weights and the autograd switch is
thread-local, so sharing one :class:`~repro.workflow.engine.ForecastEngine`
across workers is safe (on multi-core hosts NumPy releases the GIL in
its kernels, which is where the parallel speedup comes from).

Where the GIL *does* bind — the pure-NumPy backend spends real time in
Python between kernels — the pool offers ``backend="process"``: each
replica's engine runs in a child process behind a
:class:`~repro.serve.procpool.ProcessWorker` (weights and compiled
plans shipped once at spawn, per-batch traffic through shared-memory
descriptors), so replicas scale with cores instead of contending for
one.  The executor is the only thing that changes; routing, admission,
versioned deploys and autoscaling above it are backend-agnostic, and
results stay bitwise-identical to the direct engine call.

On top of the data plane, the pool is also the serving **control
plane** (PR 5): the live worker set is dynamic (:meth:`~EngineWorkerPool.add_worker`
/ :meth:`~EngineWorkerPool.remove_worker`, which the load-adaptive
:class:`~repro.serve.autoscale.AutoScaler` drives), and
:meth:`~EngineWorkerPool.deploy` rolls a new :class:`EngineVersion`
through the pool replica-by-replica without dropping traffic: each old
replica is *surged* (a warmed new-version replica is admitted first),
then drained — its already-admitted requests finish on the engine that
admitted them, so every response stays bitwise-deterministic for its
pinned version — and retired.  A warmup failure rolls back before
anything serving-visible has changed.  Every topology transition is
recorded as a :class:`PoolEvent`.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..hpc.serving import ServingCapacityModel
from ..tensor import plan_passes as _passes
from ..workflow.engine import FieldWindow, ForecastResult
from .hostpool import HostWorker
from .procpool import ProcessWorker
from .scheduler import MicroBatchScheduler, ServedFuture, ServeMetrics

__all__ = [
    "PoolSaturated",
    "DeploymentError",
    "EngineVersion",
    "PoolEvent",
    "Router",
    "RoundRobinRouter",
    "LeastOutstandingRouter",
    "KeyAffinityRouter",
    "PoolMetrics",
    "EngineWorkerPool",
]


class DeploymentError(RuntimeError):
    """A :meth:`EngineWorkerPool.deploy` failed and was rolled back.

    The pool is guaranteed to be serving the previous version on the
    previous worker topology when this propagates; the underlying
    failure is chained as ``__cause__``.
    """


class PoolSaturated(RuntimeError):
    """Admission control rejected a request: every admissible replica
    is at its ``max_queue`` bound.

    Attributes
    ----------
    retry_after: suggested client back-off [s] — the modelled time for
        the least-loaded admissible replica to drain one queue slot,
        from the pool's fitted batch-cost law (falls back to the
        scheduler ``max_wait`` before any batch has been observed).
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


def stable_key_hash(key) -> int:
    """Deterministic 64-bit hash of a routing key.

    ``hash(str)`` is randomised per process; sharding must instead be
    stable across runs (and documented), so affinity routing hashes the
    key's string form with BLAKE2b.
    """
    digest = hashlib.blake2b(str(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Router:
    """Pluggable policy mapping one request to a preference-ordered
    list of replicas.

    Subclasses implement :meth:`candidates`; the pool admits the
    request to the first candidate with queue room and sheds it when
    none has any.  Returning *fewer* than all workers is how a policy
    expresses a hard placement constraint (key affinity returns exactly
    one), at the price of shedding while better-placed replicas idle.

    Policies are instantiated per pool and called under the pool's
    routing lock, so they may keep unguarded mutable state (e.g. the
    round-robin cursor) but must not block.
    """

    #: registry name, also echoed in ``PoolMetrics.summary()``
    name = "base"

    #: whether the policy reads the routing key — lets callers skip
    #: computing one (content digests are not free) when it is ignored
    uses_keys = False

    _REGISTRY: Dict[str, type] = {}

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        # only classes that declare their own name register: a subclass
        # tweaking behaviour must not silently replace its parent's
        # registry entry, and an accidental name collision is an error
        name = cls.__dict__.get("name")
        if name is None:
            return
        if name in Router._REGISTRY:
            raise ValueError(
                f"router name {name!r} is already registered to "
                f"{Router._REGISTRY[name].__qualname__}")
        Router._REGISTRY[name] = cls

    @staticmethod
    def make(spec: Union[str, "Router"]) -> "Router":
        """Resolve a policy: an instance passes through, a name
        (``"round-robin"`` | ``"least-outstanding"`` | ``"key-affinity"``)
        constructs the registered class."""
        if isinstance(spec, Router):
            return spec
        try:
            return Router._REGISTRY[spec]()
        except KeyError:
            raise ValueError(
                f"unknown router {spec!r}; registered: "
                f"{sorted(Router._REGISTRY)}") from None

    def candidates(self, key, n_workers: int,
                   outstanding: Sequence[int]) -> Sequence[int]:
        """Replica indices to try, in preference order.

        Parameters
        ----------
        key: the request's routing key (may be ``None``).
        n_workers: pool width.
        outstanding: per-replica outstanding request counts, a
            consistent snapshot taken under the routing lock.
        """
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through the replicas regardless of load or key.

    The classic fair policy: every replica sees the same request rate.
    When the preferred replica is full the rotation continues, so
    round-robin only sheds when the whole pool is at bound.
    """

    name = "round-robin"

    def __init__(self):
        self._cursor = 0

    def candidates(self, key, n_workers, outstanding):
        start = self._cursor % n_workers
        self._cursor += 1
        return [(start + i) % n_workers for i in range(n_workers)]


class LeastOutstandingRouter(Router):
    """Send each request to the replica with the fewest outstanding
    requests (ties break toward the lowest index).

    Adapts to heterogeneous request costs and stragglers — a replica
    stuck on a slow batch naturally stops receiving traffic.  Like
    round-robin it sheds only when the whole pool is at bound.
    """

    name = "least-outstanding"

    def candidates(self, key, n_workers, outstanding):
        return sorted(range(n_workers), key=lambda i: (outstanding[i], i))


class KeyAffinityRouter(Router):
    """Shard by key: requests with equal keys always land on the same
    replica (``stable_key_hash(key) % n_workers``).

    This is the policy that keeps per-replica state effective under
    sharding — duplicate scenarios meet in one replica's queue, so
    result caches and in-flight dedup keyed on the request content
    (:func:`~repro.serve.cache.window_key`) keep their hit rates.
    Affinity is *strict*: a request whose home replica is full is shed
    even if other replicas are idle, because spilling would silently
    break the co-location guarantee.  Keyless requests fall back to
    round-robin.
    """

    name = "key-affinity"
    uses_keys = True

    def __init__(self):
        self._fallback = RoundRobinRouter()

    def candidates(self, key, n_workers, outstanding):
        if key is None:
            return self._fallback.candidates(key, n_workers, outstanding)
        return [stable_key_hash(key) % n_workers]


@dataclass(frozen=True)
class EngineVersion:
    """One deployed engine generation.

    ``version`` is a monotonically increasing integer; every request is
    pinned at admission to the version of the worker that admitted it
    (``ServedFuture.engine_version``), and a version's results are
    bitwise-deterministic — they equal the direct ``forecast_batch``
    output of that version's engine on the micro-batch composition.
    """

    version: int
    engines: Tuple              # distinct engine objects of this version
    source: str                 # human-readable provenance of the weights
    deployed_at: float          # time.time() when the version was created


@dataclass(frozen=True)
class PoolEvent:
    """One control-plane transition (deploy step, scale-up/down)."""

    kind: str                   # "scale-up" | "scale-down" | "deploy-*"
    when: float                 # time.time()
    n_workers: int              # live workers AFTER the transition
    version: int                # version the transition concerns
    detail: str = ""


@dataclass(eq=False)
class _Worker:
    """One replica: its scheduler plus the pool's admission counters.

    ``engine`` is the source batch executor the replica serves;
    ``executor`` is what its scheduler actually drives — the same
    object for the thread backend, a
    :class:`~repro.serve.procpool.ProcessWorker` wrapping ``engine``
    for the process backend (the pool owns and closes the wrapper; the
    engine belongs to the caller).
    """

    worker_id: int
    scheduler: MicroBatchScheduler
    version: int = 1             # EngineVersion that this replica serves
    engine: object = None        # source executor (caller-owned)
    executor: object = None      # what the scheduler drives (pool-owned
    #                              when it differs from engine)
    draining: bool = False       # no longer admissible; being retired
    outstanding: int = 0         # admitted, not yet completed
    submitted: int = 0           # admitted ever
    shed: int = 0                # rejected with this worker as first choice


class PoolMetrics:
    """Pool-level view over the per-worker :class:`ServeMetrics`.

    A live aggregation (not a snapshot): occupancy and counters are
    recomputed from the workers' metric logs on every access, so the
    same object stays valid for the pool's whole lifetime.  Pool
    occupancy is total requests over total engine forwards — the
    figure of merit batching must hold on to as the pool widens, since
    sharding thins each replica's queue.

    The worker set is dynamic (deploys and autoscaling retire and spawn
    replicas); aggregation therefore runs over the *live and retired*
    workers, so history is never lost when a replica drains — a pool
    that served 100 requests still reports 100 after every original
    replica has been swapped out.
    """

    def __init__(self, pool: "EngineWorkerPool"):
        self._pool = pool

    def _all_workers(self) -> List[_Worker]:
        return self._pool._all_workers()

    @property
    def n_workers(self) -> int:
        """Live replicas (including any mid-drain)."""
        return len(self._pool.workers)

    @property
    def per_worker(self) -> List[ServeMetrics]:
        """The underlying per-replica metric logs, live then retired."""
        return [w.scheduler.metrics for w in self._all_workers()]

    @property
    def events(self) -> List[PoolEvent]:
        """Control-plane transition log (deploys, scale-up/down)."""
        return list(self._pool.events)

    @property
    def batches(self) -> List:
        """All replicas' :class:`~repro.serve.scheduler.BatchRecord`
        logs flattened — the input to capacity-model fits."""
        return [b for m in self.per_worker for b in m.batches]

    @property
    def shed_requests(self) -> int:
        return self._pool.shed_requests

    @property
    def outstanding(self) -> int:
        return sum(w.outstanding for w in self._pool.workers)

    @property
    def n_requests(self) -> int:
        return sum(m.n_requests for m in self.per_worker)

    @property
    def n_batches(self) -> int:
        return sum(m.n_batches for m in self.per_worker)

    @property
    def n_failed_batches(self) -> int:
        return sum(m.n_failed_batches for m in self.per_worker)

    @property
    def plan_batches(self) -> int:
        """Micro-batches served by a compiled inference plan, across
        every replica."""
        return sum(m.plan_batches for m in self.per_worker)

    @property
    def padded_rows(self) -> int:
        """Pad rows added by batch-shape bucketing across every
        replica (partial batches replaying a larger plan)."""
        return sum(m.padded_rows for m in self.per_worker)

    @property
    def bucket_pad_fraction(self) -> float:
        """Padded rows / rows computed, pool-wide — the forward compute
        wasted so partial batches can hit the plan cache."""
        computed = sum(
            b.plan_batch if b.plan_batch is not None else b.size
            for m in self.per_worker for b in m.batches)
        return self.padded_rows / computed if computed else 0.0

    def bucket_hits(self) -> Dict[int, int]:
        """Micro-batches served per plan bucket (plan batch size →
        count), summed over every replica."""
        out: Dict[int, int] = {}
        for m in self.per_worker:
            for size, n in m.bucket_hits().items():
                out[size] = out.get(size, 0) + n
        return dict(sorted(out.items()))

    @property
    def mean_occupancy(self) -> float:
        if not self.n_batches:
            return float("nan")
        return self.n_requests / self.n_batches

    @property
    def max_occupancy(self) -> int:
        return max((m.max_occupancy for m in self.per_worker), default=0)

    @property
    def engine_seconds(self) -> float:
        return sum(b.seconds for m in self.per_worker for b in m.batches)

    @property
    def ipc_wait_s(self) -> float:
        """Total IPC overhead across every process-backed replica ever
        (batch round-trip minus child engine time); 0.0 for a pure
        thread pool."""
        return sum(m.ipc_wait_s for m in self.per_worker)

    @property
    def marshal_bytes(self) -> int:
        """Total bytes moved through the shared-memory transport
        (requests out + results back); 0 for a pure thread pool."""
        return sum(m.marshal_bytes for m in self.per_worker)

    @property
    def net_wait_s(self) -> float:
        """Total network-transport overhead across every host-backed
        replica (batch round-trip minus remote engine time); 0.0 for
        thread and process pools."""
        return sum(m.net_wait_s for m in self.per_worker)

    @property
    def frame_bytes(self) -> int:
        """Total bytes framed onto the fabric wire (request frames out
        + result frames back); 0 off the host backend."""
        return sum(m.frame_bytes for m in self.per_worker)

    @property
    def inflight_depth(self) -> int:
        """Deepest request/response pipeline any host replica reached
        (≥ 2 means the network hop was genuinely overlapped with
        compute); 0 off the host backend."""
        return max((m.inflight_depth for m in self.per_worker), default=0)

    @property
    def reduced_batches(self) -> int:
        """Micro-batches served by an accuracy-gated reduced-precision
        plan variant (``serve_reduced=True`` routing)."""
        return sum(m.reduced_batches for m in self.per_worker)

    @property
    def grad_batches(self) -> int:
        """Micro-batches that ran the adjoint path across all replicas
        (thread backend only — other backends reject gradients)."""
        return sum(m.grad_batches for m in self.per_worker)

    @property
    def backward_seconds(self) -> float:
        """Cumulative wall-clock spent in gradient micro-batches across
        all replicas (forward + backward)."""
        return sum(m.backward_seconds for m in self.per_worker)

    def _pooled_latencies(self) -> List[float]:
        return [r.latency_seconds for m in self.per_worker
                for r in m.requests]

    def latency_percentile(self, q: float) -> float:
        lat = self._pooled_latencies()
        return float(np.percentile(lat, q)) if lat else float("nan")

    def queue_percentile(self, q: float) -> float:
        qs = [r.queue_seconds for m in self.per_worker for r in m.requests]
        return float(np.percentile(qs, q)) if qs else float("nan")

    def requests_by_worker(self) -> Dict[int, int]:
        """Completed-request count per worker id — the sharding skew.
        Retired workers keep their entries (worker ids are never
        reused)."""
        return {w.worker_id: w.scheduler.metrics.n_requests
                for w in self._all_workers()}

    def shed_by_worker(self) -> Dict[int, int]:
        """Sheds attributed to each first-choice worker — under key
        affinity this is where hot-key skew shows up."""
        return {w.worker_id: w.shed for w in self._all_workers()}

    def requests_by_version(self) -> Dict[int, int]:
        """Completed-request count per engine version — during a
        rolling deploy this is where the traffic handover shows up."""
        out: Dict[int, int] = {}
        for w in self._all_workers():
            out[w.version] = out.get(w.version, 0) \
                + w.scheduler.metrics.n_requests
        return dict(sorted(out.items()))

    def summary(self) -> Dict[str, float]:
        """Flat dict for logging/export; a superset of the keys of
        :meth:`ServeMetrics.summary` plus pool-only counters."""
        events = self.events
        return {
            "workers": self.n_workers,
            "engine_version": self._pool.current_version,
            "deploys": sum(e.kind == "deploy-done" for e in events),
            "scale_events": sum(e.kind in ("scale-up", "scale-down")
                                for e in events),
            "requests": self.n_requests,
            "batches": self.n_batches,
            "failed_batches": self.n_failed_batches,
            "plan_batches": self.plan_batches,
            "bucket_pad_fraction": self.bucket_pad_fraction,
            "shed_requests": self.shed_requests,
            "outstanding": self.outstanding,
            "mean_occupancy": self.mean_occupancy,
            "max_occupancy": self.max_occupancy,
            "latency_p50_ms": 1e3 * self.latency_percentile(50),
            "latency_p95_ms": 1e3 * self.latency_percentile(95),
            "queue_p50_ms": 1e3 * self.queue_percentile(50),
            "engine_seconds": self.engine_seconds,
            "ipc_wait_s": self.ipc_wait_s,
            "marshal_bytes": self.marshal_bytes,
            "net_wait_s": self.net_wait_s,
            "frame_bytes": self.frame_bytes,
            "inflight_depth": self.inflight_depth,
            "reduced_batches": self.reduced_batches,
            "grad_batches": self.grad_batches,
            "backward_seconds": self.backward_seconds,
            "spawn_seconds_mean": self._pool.mean_spawn_seconds,
        }


class EngineWorkerPool:
    """N engine replicas, each behind its own micro-batching scheduler.

    Parameters
    ----------
    engines: one batch executor (``forecast_batch`` + ``time_steps``)
        or a sequence of them, one per replica.  A single engine with
        ``replicas=N`` is shared by all N workers — safe, because
        inference never writes model state (see the module docstring).
        All replicas must agree on ``time_steps``.
    replicas: pool width when ``engines`` is a single executor; must
        match ``len(engines)`` when a sequence is given.
    max_batch, max_wait: per-replica scheduler flush policy
        (:class:`~repro.serve.scheduler.MicroBatchScheduler`).
    max_queue: per-replica bound on *outstanding* requests (admitted
        but not completed).  The pool's total backlog can never exceed
        ``replicas × max_queue``; beyond it requests shed with
        :class:`PoolSaturated`.
    router: a :class:`Router` instance or registered policy name.
    autostart: start each replica's worker thread (threaded mode).
        ``False`` gives the deterministic manual mode — the caller
        drives the queues with :meth:`flush` (or per-worker
        ``pool.workers[i].scheduler.step()``).
    warm_plans: compile each engine's inference plan for ``max_batch``
        at startup (replicas sharing one
        :class:`~repro.workflow.engine.ForecastEngine` share its plan
        cache, so the trace happens once per distinct engine); see
        :class:`~repro.serve.scheduler.MicroBatchScheduler`.
    backend: where replicas execute.  ``"thread"`` (default) runs every
        replica in-process — cheap replicas, but on the pure-NumPy
        backend they all serialise on the GIL.  ``"process"`` wraps
        each replica's engine in a
        :class:`~repro.serve.procpool.ProcessWorker`: a child process
        holding its own copy of the weights and compiled plans (arena
        in shared memory), so replicas genuinely run in parallel.
        ``"host"`` wraps each engine in a
        :class:`~repro.serve.hostpool.HostWorker`: a remote "rank"
        reached over the :mod:`repro.hpc.fabric` descriptor transport
        (socket loopback by default, in-process sim fabric for
        deterministic tests), with pipelined framing and heartbeat
        death detection.  Results are bitwise-identical on all three;
        everything above the executor — routing, admission, versioned
        deploys, autoscaling — is backend-agnostic.  Process and host
        backends require engines that expose
        ``model``/``normalizer``/``boundary_width`` (i.e. real
        :class:`~repro.workflow.engine.ForecastEngine` replicas).
    mp_context: multiprocessing start method for the process/host
        backends (default ``"spawn"``; see
        :class:`~repro.serve.procpool.ProcessWorker`).
    fabric: host-backend transport — ``"socket"`` (real TCP loopback
        wire) or ``"sim"`` (deterministic in-process fabric with
        SimComm byte accounting).  Ignored by other backends.
    serve_reduced: route batches to installed accuracy-gated
        reduced-precision plan variants
        (:meth:`~repro.workflow.engine.ForecastEngine.compile_reduced`)
        instead of the exact plans.  Off by default — results stay
        bitwise-identical unless this is explicitly turned on.

    Thread safety: :meth:`submit` and :meth:`forecast_batch` may be
    called from any number of client threads; routing state is guarded
    by one pool-level lock held only for the (cheap, non-blocking)
    placement decision.  Topology mutations (:meth:`add_worker`,
    :meth:`remove_worker`, :meth:`deploy`) serialise on a separate
    re-entrant lock and never hold the routing lock across a drain, so
    serving continues while the control plane works.
    """

    def __init__(self, engines, replicas: Optional[int] = None,
                 max_batch: int = 8, max_wait: float = 0.005,
                 max_queue: int = 32,
                 router: Union[str, Router] = "least-outstanding",
                 autostart: bool = True, warm_plans: bool = False,
                 backend: str = "thread", mp_context: str = "spawn",
                 fabric: str = "socket", serve_reduced: bool = False):
        if hasattr(engines, "forecast_batch"):
            engines = [engines]
        engines = list(engines)
        if not engines:
            raise ValueError("need at least one engine")
        if replicas is not None:
            replicas = int(replicas)
            if replicas < 1:
                raise ValueError("replicas must be >= 1")
            if len(engines) == 1 and replicas > 1:
                engines = engines * replicas
            elif len(engines) != replicas:
                raise ValueError(
                    f"got {len(engines)} engines but replicas={replicas}")
        steps = {e.time_steps for e in engines}
        if len(steps) != 1:
            raise ValueError(
                f"all replicas must share one episode length; got {steps}")
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        self.max_queue = int(max_queue)
        self.router = Router.make(router)
        self.shed_requests = 0
        self._retry_fit: Optional[Tuple[int, ServingCapacityModel]] = None
        self._route_lock = threading.Lock()
        self._topology_lock = threading.RLock()
        self._manual = not autostart
        self._closed = False
        self._max_batch = int(max_batch)
        self._max_wait = float(max_wait)
        self._warm_plans = bool(warm_plans)
        if backend not in ("thread", "process", "host"):
            raise ValueError(
                f"unknown backend {backend!r}; use 'thread', 'process' "
                "or 'host'")
        if fabric not in ("socket", "sim"):
            raise ValueError(
                f"unknown fabric {fabric!r}; use 'socket' or 'sim'")
        self.backend = backend
        self._mp_context = mp_context
        self._fabric = fabric
        self._serve_reduced = bool(serve_reduced)
        self._spawn_log: List[float] = []
        distinct = []
        for e in engines:
            if not any(e is d for d in distinct):
                distinct.append(e)
        self.versions: Dict[int, EngineVersion] = {
            1: EngineVersion(1, tuple(distinct), "initial", time.time())}
        self.current_version = 1
        self.events: List[PoolEvent] = []
        self._retired: List[_Worker] = []
        self._next_worker_id = 0
        workers = []
        try:
            for engine in engines:
                workers.append(self._make_worker(engine, version=1))
        except BaseException:
            # a failed spawn must not leak the children (and their shm
            # segments) of the replicas already constructed
            for w in workers:
                w.scheduler.close()
                self._close_executor(w)
            raise
        self.workers: Tuple[_Worker, ...] = tuple(workers)
        self.metrics = PoolMetrics(self)

    def _all_workers(self) -> List[_Worker]:
        """Live + retired workers, a consistent snapshot."""
        with self._route_lock:
            return list(self.workers) + list(self._retired)

    def plan_stats(self) -> Dict[int, Dict]:
        """Per-distinct-executor plan-cache counters.

        Thread backend: replicas sharing one engine share its cache, so
        keys are the replica ids of the first worker using each engine.
        Process backend: every replica has its own child (its own plan
        cache and arena), so every live worker reports — including the
        shm transport's ``transport`` counters (``ipc_wait_s``,
        ``marshal_bytes``, spawn cost).
        """
        seen: Dict[int, Dict] = {}
        ids = set()
        for w in self.workers:
            target = w.executor if w.executor is not None \
                else w.scheduler.engine
            if id(target) in ids or not hasattr(target, "plan_stats"):
                continue
            ids.add(id(target))
            seen[w.worker_id] = target.plan_stats()
        return seen

    @property
    def mean_spawn_seconds(self) -> float:
        """Mean wall-clock to spawn + warm one process replica (0.0 for
        the thread backend, whose replicas are just objects).  The
        autoscaler reads this to stretch its scale-down hysteresis when
        replicas are expensive to bring back."""
        with self._route_lock:
            log = list(self._spawn_log)
        return sum(log) / len(log) if log else 0.0

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    # -- batch-executor protocol ---------------------------------------
    @property
    def time_steps(self) -> int:
        return self.workers[0].scheduler.time_steps

    def forecast_batch(self, references: Sequence[FieldWindow]
                       ) -> List[ForecastResult]:
        """Submit N windows and wait for all results (executor protocol).

        Unlike :meth:`submit` this never sheds: a window rejected by
        admission control is retried after the advertised
        ``retry_after`` (after an inline :meth:`flush` in manual mode),
        because batch consumers — an ensemble mid-forecast, a hybrid
        episode — cannot meaningfully drop individual members.  Must
        not be called from a scheduler worker thread.
        """
        futures: List[ServedFuture] = []
        for reference in references:
            while True:
                try:
                    futures.append(self.submit(reference))
                    break
                except PoolSaturated as exc:
                    if self._manual:
                        self.flush()
                    else:
                        time.sleep(min(exc.retry_after, 0.1))
        if self._manual:
            self.flush()
        return [f.result() for f in futures]

    def forecast(self, reference: FieldWindow,
                 key=None) -> ForecastResult:
        """Synchronous single-request convenience wrapper."""
        future = self.submit(reference, key=key)
        if self._manual:
            self.flush()
        return future.result()

    # -- client side ----------------------------------------------------
    def submit(self, reference: FieldWindow, key=None) -> ServedFuture:
        """Route one request to a replica; returns immediately.

        Parameters
        ----------
        reference: the request window (validated by the replica's
            scheduler: episode length, shared mesh).
        key: optional routing key.  Under :class:`KeyAffinityRouter`
            equal keys are guaranteed to land on one replica; other
            policies ignore it.

        Raises
        ------
        PoolSaturated
            when every replica the policy allows is at ``max_queue``;
            the exception's ``retry_after`` is the suggested back-off.
        The returned future's ``worker_id`` records the placement and
        ``engine_version`` pins the request to the admitting worker's
        :class:`EngineVersion` — the version whose engine will (and,
        once done, did) produce the result.
        """
        return self._route_submit(
            lambda worker: worker.scheduler.submit(reference), key)

    def submit_gradient(self, request, key=None) -> ServedFuture:
        """Route one sensitivity request to a replica; returns immediately.

        Same admission control, routing, and outstanding accounting as
        :meth:`submit`; the future resolves to a
        :class:`~repro.workflow.sensitivity.SensitivityResult`.  Only
        the thread backend serves gradients: the backward pass replays
        the autograd tape the forward built, and the process/host
        transports marshal arrays, not tapes.

        Raises
        ------
        NotImplementedError
            on the process/host backends, with guidance (use a
            thread-backend pool, or call
            ``ForecastEngine.sensitivity_batch`` directly on the host
            that owns the engine).
        PoolSaturated
            as for :meth:`submit`.
        """
        if self.backend != "thread":
            raise NotImplementedError(
                f"gradient requests are not served on the "
                f"{self.backend!r} backend: the backward pass needs the "
                "autograd graph in the serving process, and the "
                f"{self.backend!r} transport marshals arrays, not "
                "autograd tapes; use EngineWorkerPool(..., "
                "backend='thread') or call "
                "ForecastEngine.sensitivity_batch directly on the host "
                "that owns the engine")
        return self._route_submit(
            lambda worker: worker.scheduler.submit_gradient(request), key)

    def _route_submit(self, enqueue, key) -> ServedFuture:
        """Shared admission + routing core of :meth:`submit` /
        :meth:`submit_gradient`: choose a worker under the routing
        lock, account it as outstanding, and enqueue via
        ``enqueue(worker)``."""
        with self._route_lock:
            if self._closed:
                raise RuntimeError("pool is closed")
            # draining replicas (mid-deploy, scaling down) take no new
            # work; the router only ever sees the admissible set, so a
            # strict policy like key affinity re-shards over it instead
            # of shedding against a replica that is being retired
            admissible = [w for w in self.workers if not w.draining]
            if not admissible:
                raise RuntimeError("pool has no admissible replicas")
            outstanding = [w.outstanding for w in admissible]
            order = [admissible[i] for i in
                     self.router.candidates(key, len(admissible),
                                            outstanding)]
            chosen = next((w for w in order
                           if w.outstanding < self.max_queue), None)
            if chosen is None:
                self.shed_requests += 1
                if order:
                    order[0].shed += 1
                retry = self._retry_after_locked(
                    min((w.outstanding for w in order),
                        default=self.max_queue))
                raise PoolSaturated(
                    f"pool saturated: {len(order)} admissible replica(s) "
                    f"all at max_queue={self.max_queue}; retry in "
                    f"{retry:.3f}s", retry)
            worker = chosen
            worker.outstanding += 1
            worker.submitted += 1
            # enqueue while still holding the routing lock: a
            # concurrent remove_worker/deploy marks draining under this
            # same lock *before* closing the scheduler, so a request
            # placed here is guaranteed to be in the queue the drain
            # serves — without this, the worker could close in the gap
            # between placement and enqueue and the request would be
            # lost with a RuntimeError instead of served or shed
            try:
                future = enqueue(worker)
            except BaseException:
                worker.outstanding -= 1
                worker.submitted -= 1
                raise
        future.worker_id = worker.worker_id
        future.engine_version = worker.version
        future.add_done_callback(
            lambda fut, w=worker: self._request_done(w))
        return future

    def _request_done(self, worker: _Worker) -> None:
        with self._route_lock:
            worker.outstanding -= 1

    #: per-replica window of recent batch records the retry-after fit
    #: looks at — bounds the work done per shed on a long-lived pool
    RETRY_FIT_WINDOW = 128

    def _retry_after_locked(self, queue_depth: int) -> float:
        """Back-off estimate: modelled time for the least-loaded
        admissible replica to free one queue slot — the wall-clock of
        its next micro-batch, which serves at most ``max_batch`` of the
        queued requests.

        Runs under the routing lock on every shed, so it must stay
        cheap: the affine fit is over a bounded window of each
        replica's most recent batches (the current serving regime,
        which is also the statistically right window) and is cached
        until new batches land.
        """
        n_batches = sum(len(w.scheduler.metrics.batches)
                        for w in self.workers)
        if n_batches == 0:
            # nothing observed yet — one flush-policy quantum
            return max(self._max_wait, 1e-3)
        if self._retry_fit is None or self._retry_fit[0] != n_batches:
            records = [
                b for w in self.workers
                for b in w.scheduler.metrics.batches[-self.RETRY_FIT_WINDOW:]
                if not b.failed]
            if not records:
                return max(self._max_wait, 1e-3)
            self._retry_fit = (n_batches,
                               ServingCapacityModel.from_batch_log(records))
        model = self._retry_fit[1]
        next_batch = min(max(queue_depth, 1), self._max_batch)
        return model.dispatch_seconds \
            + model.per_request_seconds * next_batch

    # -- capacity -------------------------------------------------------
    def capacity_model(self) -> ServingCapacityModel:
        """Fit the per-replica affine batch-cost law from the pool's
        aggregated batch log (see
        :meth:`ServingCapacityModel.from_batch_log`)."""
        return ServingCapacityModel.from_batch_log(self.metrics.batches)

    # -- control plane: topology ----------------------------------------
    def _make_worker(self, engine, version: int) -> _Worker:
        """Construct one fully-warmed replica (not yet routable).

        Process backend: the engine is wrapped in a
        :class:`~repro.serve.procpool.ProcessWorker` whose child is
        spawned, warmed (every plan already compiled on the engine
        ships with the payload, plus the whole ``max_batch`` bucket set
        when the pool warms plans — so partial batches hit compiled
        buckets from the first flush) and handshaken *here* — before
        the replica can become routable — so traffic never reaches a
        cold or half-born child.
        """
        warm = self._warm_plans and hasattr(engine, "compile")
        executor = engine
        if self.backend == "process":
            executor = ProcessWorker(
                engine,
                warm_batches=_passes.plan_buckets(self._max_batch)
                if warm else (),
                mp_context=self._mp_context,
                serve_reduced=self._serve_reduced)
            with self._route_lock:
                self._spawn_log.append(executor.spawn_seconds)
        elif self.backend == "host":
            executor = HostWorker(
                engine, fabric=self._fabric,
                warm_batches=_passes.plan_buckets(self._max_batch)
                if warm else (),
                mp_context=self._mp_context,
                serve_reduced=self._serve_reduced)
            with self._route_lock:
                self._spawn_log.append(executor.spawn_seconds)
        elif self._serve_reduced and hasattr(engine, "serve_reduced"):
            # thread backend: the engine itself routes
            engine.serve_reduced = True
        scheduler = MicroBatchScheduler(
            executor, max_batch=self._max_batch, max_wait=self._max_wait,
            autostart=not self._manual, warm_plans=warm)
        with self._route_lock:
            worker_id = self._next_worker_id
            self._next_worker_id += 1
        worker = _Worker(worker_id, scheduler, version=version,
                         engine=engine, executor=executor)
        if executor is not engine:
            executor.on_death = \
                lambda _pw, w=worker: self._on_executor_death(w)
        return worker

    def _close_executor(self, worker: _Worker) -> None:
        """Tear down a pool-owned executor wrapper (the child process
        and its shared-memory segments); caller-owned engines are left
        alone.  Always called *after* the worker's scheduler closed —
        by then every queued request was served or failed, so nothing
        can still need the executor."""
        if worker.executor is not None \
                and worker.executor is not worker.engine:
            worker.executor.close()

    def _on_executor_death(self, worker: _Worker) -> None:
        """A process replica's child died.  Runs on whatever thread hit
        the dead transport — typically the worker's own scheduler
        thread, mid-``_run_batch`` — so it only flags the replica
        inadmissible (cheap, under the routing lock) and hands the
        blocking retirement to a helper thread; closing the scheduler
        inline would self-join the thread we are standing on."""
        with self._route_lock:
            if self._closed or worker.draining \
                    or not any(w is worker for w in self.workers):
                return
            worker.draining = True
            self.events.append(PoolEvent(
                "worker-death", time.time(), len(self.workers),
                worker.version,
                f"worker {worker.worker_id} child process died"))
        threading.Thread(
            target=self._retire_dead_worker, args=(worker,),
            name=f"retire-worker-{worker.worker_id}", daemon=True).start()

    def _retire_dead_worker(self, worker: _Worker) -> None:
        # the executor is already dead, so close() fails any backlog
        # fast instead of serving it — failed futures, never hangs
        worker.scheduler.close()
        self._close_executor(worker)
        with self._route_lock:
            if any(w is worker for w in self.workers):
                self.workers = tuple(w for w in self.workers
                                     if w is not worker)
                self._retired.append(worker)
                self.events.append(PoolEvent(
                    "worker-retired", time.time(), len(self.workers),
                    worker.version,
                    f"worker {worker.worker_id} retired after child "
                    "death"))

    def add_worker(self, engine=None, version: Optional[int] = None,
                   kind: str = "scale-up", detail: str = "") -> _Worker:
        """Spawn one replica and admit it to routing; returns it.

        The replica is fully constructed — scheduler, worker thread,
        compiled-plan warmup when the pool warms plans — *before* it
        becomes routable, so scaling up never exposes a cold replica to
        traffic.  With no ``engine`` the current version's engine is
        shared (the standard scale-up; replicas sharing one
        :class:`~repro.workflow.engine.ForecastEngine` also share its
        plan cache, so the warmup is a cache hit).
        """
        with self._topology_lock:
            with self._route_lock:
                if self._closed:
                    raise RuntimeError("pool is closed")
                if version is None:
                    version = self.current_version
                if engine is None:
                    engine = self.versions[version].engines[0]
            if engine.time_steps != self.time_steps:
                raise ValueError(
                    f"engine time_steps {engine.time_steps} != pool "
                    f"{self.time_steps}")
            worker = self._make_worker(engine, version)
            with self._route_lock:
                self.workers = (*self.workers, worker)
                self.events.append(PoolEvent(
                    kind, time.time(), len(self.workers), version, detail))
            return worker

    def remove_worker(self, worker_id: int, kind: str = "scale-down",
                      detail: str = "") -> None:
        """Drain one replica and retire it.

        The replica first leaves the routable set (no new admissions),
        then its scheduler is closed — which serves every request it
        had already admitted on the engine (and version) that admitted
        them, so nothing is lost or re-routed — and finally it retires
        into the metrics history.  Blocks until the drain completes; in
        manual mode the backlog is served inline.  Refuses to remove
        the last admissible replica.
        """
        with self._topology_lock:
            with self._route_lock:
                worker = next((w for w in self.workers
                               if w.worker_id == worker_id), None)
                if worker is None:
                    raise ValueError(f"no live worker {worker_id}")
                if worker.draining:
                    raise ValueError(f"worker {worker_id} already draining")
                if sum(not w.draining for w in self.workers) <= 1:
                    raise ValueError(
                        "cannot remove the last admissible replica")
                worker.draining = True
            # outside the routing lock: completion callbacks need it.
            # Scheduler first (drains or fails every admitted request),
            # executor second — a process child and its shm segments
            # are reclaimed only once nothing can still reach them
            worker.scheduler.close()
            self._close_executor(worker)
            with self._route_lock:
                self.workers = tuple(w for w in self.workers
                                     if w is not worker)
                self._retired.append(worker)
                self.events.append(PoolEvent(
                    kind, time.time(), len(self.workers), worker.version,
                    detail))

    # -- control plane: versioned deploys -------------------------------
    def deploy(self, engine, source: str = "deploy",
               warm: Optional[bool] = None,
               clear_old_plans: bool = False) -> EngineVersion:
        """Roll a new engine version through the pool, zero-downtime.

        Replica by replica: a warmed new-version replica is *surged*
        into the routable set first, then one old replica is drained
        (its already-admitted requests finish on the version that
        admitted them — that is the bitwise version-pinning guarantee)
        and retired.  Capacity therefore never drops below the
        pre-deploy width and nothing is shed on the deploy's account.

        Parameters
        ----------
        engine: the new version's batch executor; all rolled replicas
            share it (inference is read-only, like ``replicas=N``).
        source: human-readable provenance recorded on the
            :class:`EngineVersion` (e.g. a checkpoint path).
        warm: pre-compile inference plans on the new engine *before*
            touching the pool — the sizes the outgoing engines had
            compiled, plus ``max_batch`` when the pool warms plans (or
            ``warm=True`` is explicit).  Default: warm whenever the
            engine supports ``compile``.  A warmup failure raises
            :class:`DeploymentError` with the pool untouched.
        clear_old_plans: after a successful roll, drop the retired
            engines' plan caches (recovers their arena memory).  Off by
            default because the pool does not own caller-constructed
            engines.

        Raises
        ------
        DeploymentError
            warmup failed (pool untouched) or the roll failed midway
            (pool rolled back to the previous version and topology);
            the underlying failure is chained.
        """
        if not (hasattr(engine, "forecast_batch")
                and hasattr(engine, "time_steps")):
            raise TypeError(
                "deploy() needs a batch executor (forecast_batch + "
                "time_steps)")
        if engine.time_steps != self.time_steps:
            raise ValueError(
                f"new engine time_steps {engine.time_steps} != pool "
                f"{self.time_steps}")
        with self._topology_lock:
            with self._route_lock:
                if self._closed:
                    raise RuntimeError("pool is closed")
                old_workers = [w for w in self.workers if not w.draining]
                old_version = self.current_version
            # 1. warm the new engine before touching the pool: a failed
            # warmup must leave serving exactly as it was
            can_compile = hasattr(engine, "compile")
            explicit_warm = warm is True
            if warm is None:
                warm = can_compile
            if warm and not can_compile:
                raise ValueError("warm=True needs an engine with compile()")
            if warm:
                sizes = set()
                for w in old_workers:
                    sizes.update(
                        getattr(w.engine, "compiled_batches", None) or [])
                if self._warm_plans or explicit_warm:
                    # the whole bucket set, so partial batches keep
                    # hitting compiled plans across the version roll
                    sizes.update(_passes.plan_buckets(self._max_batch))
                try:
                    for b in sorted(sizes):
                        engine.compile(b)
                except BaseException as exc:
                    raise DeploymentError(
                        f"warmup of {source!r} failed; pool unchanged "
                        f"(still serving version {old_version})") from exc
            # 2. register the version and roll replica by replica
            with self._route_lock:
                version = max(self.versions) + 1
                record = EngineVersion(version, (engine,), source,
                                       time.time())
                self.versions[version] = record
                self.events.append(PoolEvent(
                    "deploy-begin", time.time(), len(self.workers),
                    version, source))
            added: List[_Worker] = []
            drained: List[_Worker] = []
            try:
                for old in old_workers:
                    added.append(self.add_worker(
                        engine, version, kind="deploy-surge",
                        detail=f"replacing worker {old.worker_id}"))
                    self.remove_worker(
                        old.worker_id, kind="deploy-drain",
                        detail=f"version {old.version} replica drained")
                    drained.append(old)
            except BaseException as exc:
                # 3a. roll back: re-admit one replica per drained old
                # worker (their engines are intact), retire the new ones
                for old in drained:
                    self.add_worker(
                        old.engine, old.version,
                        kind="deploy-rollback",
                        detail=f"restoring worker {old.worker_id}'s engine")
                for w in added:
                    try:
                        self.remove_worker(w.worker_id,
                                           kind="deploy-rollback")
                    except ValueError:
                        pass
                with self._route_lock:
                    self.versions.pop(version, None)
                    self.events.append(PoolEvent(
                        "deploy-rollback", time.time(), len(self.workers),
                        version, repr(exc)))
                raise DeploymentError(
                    f"deploy of {source!r} failed mid-roll; rolled back "
                    f"to version {old_version}") from exc
            # 3b. promote
            with self._route_lock:
                self.current_version = version
                self.events.append(PoolEvent(
                    "deploy-done", time.time(), len(self.workers),
                    version, source))
            if clear_old_plans:
                live = {id(w.engine) for w in self.workers}
                for old in drained:
                    retired_engine = old.engine
                    if id(retired_engine) not in live \
                            and hasattr(retired_engine, "clear_plans"):
                        retired_engine.clear_plans()
                        live.add(id(retired_engine))
            return record

    # -- manual drive ---------------------------------------------------
    def flush(self) -> int:
        """Drain every replica's queue now; returns requests served.

        Manual-mode scheduling quantum at pool granularity; loops until
        a full sweep over the replicas serves nothing, so requests
        enqueued by completion callbacks are drained too.
        """
        total = 0
        while True:
            n = sum(w.scheduler.flush() for w in self.workers)
            if n == 0:
                return total
            total += n

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Stop admission, serve every replica's backlog, join workers.

        Schedulers close first (drain-or-fail every queued request),
        then the process backend's executors — children stopped, every
        shared-memory segment unlinked."""
        with self._route_lock:
            self._closed = True
        for w in self.workers:
            w.scheduler.close()
        for w in self.workers:
            self._close_executor(w)

    def __enter__(self) -> "EngineWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
