"""Keyed LRU forecast-result cache for the serving front door.

At serving scale many users ask for the *same* scenario (the current
analysis window, a trending storm track), so the most effective
optimisation is to never re-run the engine at all.  The cache is keyed
by a content digest of the request window — identical fields hash to
the same key regardless of which client or thread submitted them — and
bounded in bytes with the same LRU eviction core
(:class:`~repro.data.cache.LruBytes`) that backs the data layer's OS
page-cache simulation.

Hits hand out *copies* of the cached fields: forecast consumers
routinely write into their result windows (episode chaining overwrites
slot 0), and a shared cached array must never be mutated under other
requests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.cache import LruBytes
from ..workflow.engine import FieldWindow, ForecastResult
from ..workflow.sensitivity import GradientRequest

__all__ = ["window_key", "gradient_key", "ForecastCacheStats",
           "ForecastCache"]


def window_key(window: FieldWindow, extra: Tuple = ()) -> str:
    """Content digest of a request window (plus optional extra tokens).

    Shapes and dtypes are folded in before the raw bytes so e.g. a
    (4, 15, 14) float32 window cannot collide with a (4, 14, 15)
    float64 one of identical byte content.  ``extra`` distinguishes
    otherwise-identical windows served under different policies (say,
    an ensemble member count).
    """
    h = hashlib.sha256()
    for name in ("u3", "v3", "w3", "zeta"):
        arr = np.ascontiguousarray(getattr(window, name))
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    for token in extra:
        h.update(repr(token).encode())
    return h.hexdigest()


def gradient_key(request: GradientRequest) -> str:
    """Content digest of a sensitivity request.

    Extends :func:`window_key` with everything that changes the
    gradient for byte-identical windows: the diagnostic, the ``wrt``
    targets, the observation window's digest (``surge_mse``) and the
    full storm-overlay parameter set — so a forecast and a gradient of
    the same window can never collide, and neither can two gradients
    under different diagnostics or storm hypotheses.
    """
    extra: list = ["grad", request.diagnostic, tuple(request.wrt)]
    if request.observation is not None:
        obs = np.ascontiguousarray(np.asarray(request.observation))
        extra.append(("obs", obs.shape, str(obs.dtype),
                      hashlib.sha256(obs.tobytes()).hexdigest()))
    if request.storm is not None:
        extra.append(
            ("storm",) + tuple(sorted(
                dataclasses.asdict(request.storm).items())))
    return window_key(request.window, extra=tuple(extra))


@dataclass
class ForecastCacheStats:
    """Hit/miss accounting of the result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _result_nbytes(result) -> int:
    if isinstance(result, ForecastResult):
        f = result.fields
        return f.u3.nbytes + f.v3.nbytes + f.w3.nbytes + f.zeta.nbytes
    # sensitivity results account for themselves
    return int(result.nbytes())


class ForecastCache:
    """Thread-safe LRU of completed forecasts, keyed by window digest.

    Parameters
    ----------
    capacity_bytes: byte budget over the cached *field* arrays.
    """

    def __init__(self, capacity_bytes: int):
        self._lru = LruBytes(capacity_bytes, size_of=_result_nbytes)
        self.stats = ForecastCacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def resident_bytes(self) -> int:
        return self._lru.used_bytes

    def get(self, key: str):
        """Cached result for ``key`` (a private copy), or ``None``.

        Holds :class:`ForecastResult` and
        :class:`~repro.workflow.sensitivity.SensitivityResult` payloads
        alike (keyed by :func:`window_key` / :func:`gradient_key`, so
        the two namespaces never collide).
        """
        with self._lock:
            cached = self._lru.get(key)
            if cached is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            if isinstance(cached, ForecastResult):
                return ForecastResult(cached.fields.copy(), 0.0,
                                      cached.episodes,
                                      engine_version=cached.engine_version)
            return cached.copy()

    def put(self, key: str, result) -> None:
        """Store a completed result (a private copy of its arrays).

        ``engine_version`` rides along so a hit stays attributable to
        the weights that computed it (the server clears the cache on
        deploy, but entries read out mid-roll keep an honest label).
        """
        if isinstance(result, ForecastResult):
            stored = ForecastResult(result.fields.copy(),
                                    result.inference_seconds,
                                    result.episodes,
                                    engine_version=result.engine_version)
        else:
            stored = result.copy()
        with self._lock:
            self.stats.evictions += self._lru.put(key, stored)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()
