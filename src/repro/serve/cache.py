"""Keyed LRU forecast-result cache for the serving front door.

At serving scale many users ask for the *same* scenario (the current
analysis window, a trending storm track), so the most effective
optimisation is to never re-run the engine at all.  The cache is keyed
by a content digest of the request window — identical fields hash to
the same key regardless of which client or thread submitted them — and
bounded in bytes with the same LRU eviction core
(:class:`~repro.data.cache.LruBytes`) that backs the data layer's OS
page-cache simulation.

Hits hand out *copies* of the cached fields: forecast consumers
routinely write into their result windows (episode chaining overwrites
slot 0), and a shared cached array must never be mutated under other
requests.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..data.cache import LruBytes
from ..workflow.engine import FieldWindow, ForecastResult

__all__ = ["window_key", "ForecastCacheStats", "ForecastCache"]


def window_key(window: FieldWindow, extra: Tuple = ()) -> str:
    """Content digest of a request window (plus optional extra tokens).

    Shapes and dtypes are folded in before the raw bytes so e.g. a
    (4, 15, 14) float32 window cannot collide with a (4, 14, 15)
    float64 one of identical byte content.  ``extra`` distinguishes
    otherwise-identical windows served under different policies (say,
    an ensemble member count).
    """
    h = hashlib.sha256()
    for name in ("u3", "v3", "w3", "zeta"):
        arr = np.ascontiguousarray(getattr(window, name))
        h.update(name.encode())
        h.update(str(arr.shape).encode())
        h.update(str(arr.dtype).encode())
        h.update(arr.tobytes())
    for token in extra:
        h.update(repr(token).encode())
    return h.hexdigest()


@dataclass
class ForecastCacheStats:
    """Hit/miss accounting of the result cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _result_nbytes(result: ForecastResult) -> int:
    f = result.fields
    return f.u3.nbytes + f.v3.nbytes + f.w3.nbytes + f.zeta.nbytes


class ForecastCache:
    """Thread-safe LRU of completed forecasts, keyed by window digest.

    Parameters
    ----------
    capacity_bytes: byte budget over the cached *field* arrays.
    """

    def __init__(self, capacity_bytes: int):
        self._lru = LruBytes(capacity_bytes, size_of=_result_nbytes)
        self.stats = ForecastCacheStats()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def resident_bytes(self) -> int:
        return self._lru.used_bytes

    def get(self, key: str) -> Optional[ForecastResult]:
        """Cached result for ``key`` (a private copy), or ``None``."""
        with self._lock:
            cached = self._lru.get(key)
            if cached is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return ForecastResult(cached.fields.copy(), 0.0,
                                  cached.episodes,
                                  engine_version=cached.engine_version)

    def put(self, key: str, result: ForecastResult) -> None:
        """Store a completed forecast (a private copy of its fields).

        ``engine_version`` rides along so a hit stays attributable to
        the weights that computed it (the server clears the cache on
        deploy, but entries read out mid-roll keep an honest label).
        """
        stored = ForecastResult(result.fields.copy(),
                                result.inference_seconds, result.episodes,
                                engine_version=result.engine_version)
        with self._lock:
            self.stats.evictions += self._lru.put(key, stored)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()
