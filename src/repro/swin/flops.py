"""Analytic FLOP counting for the 4-D Swin surrogate.

Computes per-component multiply-accumulate counts from a
:class:`~repro.swin.model.SurrogateConfig` without instantiating the
model.  Used by the HPC performance models to scale measured compute
times between mesh sizes (e.g. from the bench mesh to the paper's
898×598×12), and by Table IV-style analyses to separate encoder vs.
decoder cost as the patch size changes.

Conventions: one MAC = 2 FLOPs; biases and normalisation are counted
at 2 FLOPs/element (negligible but kept for completeness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .model import SurrogateConfig

__all__ = ["FlopBreakdown", "surrogate_flops", "attention_flops",
           "scale_compute_time"]


@dataclass(frozen=True)
class FlopBreakdown:
    """Forward-pass FLOPs by component."""

    patch_embed: int
    encoder_attention: int
    encoder_mlp: int
    patch_merging: int
    decoder_convs: int
    patch_recover: int

    @property
    def encoder(self) -> int:
        return (self.patch_embed + self.encoder_attention
                + self.encoder_mlp + self.patch_merging)

    @property
    def decoder(self) -> int:
        return self.decoder_convs + self.patch_recover

    @property
    def total(self) -> int:
        return self.encoder + self.decoder

    def as_dict(self) -> Dict[str, int]:
        return {
            "patch_embed": self.patch_embed,
            "encoder_attention": self.encoder_attention,
            "encoder_mlp": self.encoder_mlp,
            "patch_merging": self.patch_merging,
            "decoder_convs": self.decoder_convs,
            "patch_recover": self.patch_recover,
            "total": self.total,
        }


def attention_flops(tokens: int, window_volume: int, dim: int) -> int:
    """FLOPs of windowed MSA over ``tokens`` tokens.

    QKV projection (3·C²), attention scores + weighted sum (2·N·C per
    token within each window of N tokens), output projection (C²).
    """
    proj = 2 * tokens * (4 * dim * dim)
    attn = 2 * tokens * (2 * window_volume * dim)
    return proj + attn


def _conv_flops(out_elems: int, in_ch: int, kernel_volume: int,
                out_ch: int) -> int:
    return 2 * out_elems * out_ch * in_ch * kernel_volume


def surrogate_flops(cfg: SurrogateConfig) -> FlopBreakdown:
    """Forward FLOPs of one episode through the configured surrogate."""
    H, W, D = cfg.mesh
    T = cfg.time_steps
    C = cfg.embed_dim
    ph, pw, pd = cfg.patch3d
    hp, wp, dp, _ = cfg.latent_dims

    # --- patch embedding: strided conv = one kernel hit per patch -----
    kvol3 = ph * pw * pd
    embed3 = _conv_flops((H // ph) * (W // pw) * (D // pd) * T,
                         cfg.n_vars_3d, kvol3, C)
    embed2 = _conv_flops((H // ph) * (W // pw) * T,
                         cfg.n_vars_2d, ph * pw, C)

    # --- encoder stages ------------------------------------------------
    attn_total = 0
    mlp_total = 0
    merge_total = 0
    h, w, d = hp, wp, dp
    dim = C
    n_stage = len(cfg.depths)
    dims_per_stage = []
    for i in range(n_stage):
        dims_per_stage.append((h, w, d, dim))
        tokens = h * w * d * T
        win = cfg.window_first if i == 0 else cfg.window_rest
        nwin = int(np.prod([min(a, b) for a, b in
                            zip(win, (h, w, d, T))]))
        attn_total += cfg.depths[i] * attention_flops(tokens, nwin, dim)
        hidden = int(dim * cfg.mlp_ratio)
        mlp_total += cfg.depths[i] * 2 * tokens * (2 * dim * hidden)
        if i < n_stage - 1:
            merge_total += 2 * (tokens // 8) * (8 * dim) * (2 * dim)
            h, w, d = h // 2, w // 2, d // 2
            dim *= 2

    # --- decoder up-path ------------------------------------------------
    dec = 0
    for i in range(n_stage - 1, 0, -1):
        sh, sw, sd, sc = dims_per_stage[i - 1]
        d_in = C * (2 ** i)
        d_out = C * (2 ** (i - 1))
        out_elems = sh * sw * sd * T
        dec += _conv_flops(out_elems, d_in, 8, d_out)        # ConvT 2³
        dec += _conv_flops(out_elems, 2 * d_out, 1, d_out)   # 1×1 fuse

    # --- patch recovery ---------------------------------------------------
    rec = _conv_flops(H * W * D * T, C, kvol3, C)            # ConvT3d
    rec += _conv_flops(H * W * D * T, C, 1, cfg.n_vars_3d)   # 1×1×1 head
    rec += _conv_flops(H * W * T, C, ph * pw, C)             # ConvT2d
    rec += _conv_flops(H * W * T, C, 1, cfg.n_vars_2d)

    return FlopBreakdown(
        patch_embed=embed3 + embed2,
        encoder_attention=attn_total,
        encoder_mlp=mlp_total,
        patch_merging=merge_total,
        decoder_convs=dec,
        patch_recover=rec,
    )


def scale_compute_time(measured_seconds: float,
                       measured_cfg: SurrogateConfig,
                       target_cfg: SurrogateConfig,
                       efficiency_ratio: float = 1.0) -> float:
    """Scale a measured per-instance compute time to another config.

    ``efficiency_ratio`` corrects for differing hardware efficiency at
    the two sizes (≤1 when the target runs closer to peak).
    """
    f_meas = surrogate_flops(measured_cfg).total
    f_targ = surrogate_flops(target_cfg).total
    return measured_seconds * (f_targ / f_meas) * efficiency_ratio
