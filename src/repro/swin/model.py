"""The coastal-circulation AI surrogate (paper Fig. 2).

:class:`CoastalSurrogate` is the paper's primary contribution: a 4-D
Swin Transformer encoder–decoder that consumes the initial condition of
(u, v, w, ζ) at t₀ plus lateral boundary conditions for t₁..T, and
predicts the interior values of all four variables at t₁..T.

Pipeline::

    u,v,w (B,3,H,W,D,T) ─ PatchEmbed3d ─┐
                                        ├─ concat along depth ─ +pos ─
    ζ     (B,1,H,W,T)   ─ PatchEmbed2d ─┘
    → SwinStage4d ×3 (W-MSA/SW-MSA pairs, patch merging between stages)
    → decoder: ConvTranspose3d + BatchNorm + GELU ×2 with U-Net skips
    → split depth → PatchRecover3d → u,v,w ;  PatchRecover2d → ζ
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..tensor import Tensor, concatenate
from ..nn import (
    BatchNorm,
    Conv3d,
    ConvTranspose3d,
    GELU,
    Module,
    ModuleList,
    Parameter,
)
from ..nn import init
from .blocks import SwinStage4d
from .patch import (
    PatchEmbed2d,
    PatchEmbed3d,
    PatchRecover2d,
    PatchRecover3d,
    _fold_time,
    _unfold_time,
)

__all__ = ["SurrogateConfig", "CoastalSurrogate"]


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyperparameters of the 4-D Swin surrogate.

    Defaults are the paper's settings transposed to the scaled default
    mesh (see DESIGN.md §6).  ``paper()`` returns the full-size
    configuration (898×598×12 zero-padded to 900×600, patch 5×5×4).
    """

    mesh: Tuple[int, int, int] = (96, 64, 6)       # padded (H, W, D)
    time_steps: int = 24                           # T snapshots per episode
    patch3d: Tuple[int, int, int] = (4, 4, 2)      # (PH, PW, PD)
    patch2d: Tuple[int, int] = (4, 4)              # (PH, PW)
    embed_dim: int = 24                            # initial latent width C
    num_heads: Tuple[int, ...] = (3, 6, 12)        # per stage
    depths: Tuple[int, ...] = (2, 2, 2)            # blocks per stage
    window_first: Tuple[int, int, int, int] = (4, 4, 2, 2)
    window_rest: Tuple[int, int, int, int] = (2, 2, 2, 2)
    mlp_ratio: float = 4.0
    dropout: float = 0.0
    use_checkpoint: bool = False
    n_vars_3d: int = 3                             # u, v, w
    n_vars_2d: int = 1                             # ζ
    seed: int = 0

    @staticmethod
    def paper() -> "SurrogateConfig":
        """Full-scale configuration from the paper (§IV-B)."""
        return SurrogateConfig(
            mesh=(900, 600, 12), time_steps=24,
            patch3d=(5, 5, 4), patch2d=(5, 5), embed_dim=24,
            num_heads=(3, 6, 12), depths=(2, 2, 2),
            window_first=(4, 4, 2, 2), window_rest=(2, 2, 2, 2),
        )

    # ------------------------------------------------------------------
    @property
    def latent_dims(self) -> Tuple[int, int, int, int]:
        """(H', W', D''+1, T) token lattice after embedding+concat."""
        H, W, D = self.mesh
        ph, pw, pd = self.patch3d
        return (H // ph, W // pw, D // pd + 1, self.time_steps)

    def validate(self) -> None:
        """Raise with a clear message if dims are inconsistent."""
        H, W, D = self.mesh
        ph, pw, pd = self.patch3d
        if H % ph or W % pw or D % pd:
            raise ValueError(
                f"mesh {self.mesh} not divisible by patch3d {self.patch3d}"
            )
        if (ph, pw) != tuple(self.patch2d):
            raise ValueError("patch2d must match the horizontal patch3d")
        if len(self.num_heads) != len(self.depths):
            raise ValueError("num_heads and depths must have equal length")
        n_merge = len(self.depths) - 1
        hp, wp, dp, _ = self.latent_dims
        for s, name in ((hp, "H'"), (wp, "W'"), (dp, "D'")):
            if s % (2 ** n_merge):
                raise ValueError(
                    f"latent dim {name}={s} not divisible by "
                    f"2^{n_merge} (needed for {n_merge} patch mergings)"
                )


class CoastalSurrogate(Module):
    """4-D Swin Transformer surrogate for coastal ocean circulation."""

    def __init__(self, config: Optional[SurrogateConfig] = None):
        super().__init__()
        cfg = config or SurrogateConfig()
        cfg.validate()
        self.config = cfg
        rng = init.default_rng(cfg.seed)
        C = cfg.embed_dim

        # --- encoder ---------------------------------------------------
        self.embed3d = PatchEmbed3d(cfg.n_vars_3d, C, cfg.patch3d, rng=rng)
        self.embed2d = PatchEmbed2d(cfg.n_vars_2d, C, cfg.patch2d, rng=rng)

        hp, wp, dp, T = cfg.latent_dims
        self.pos_spatial = Parameter(
            init.trunc_normal((1, hp, wp, dp, 1, C), rng))
        self.pos_temporal = Parameter(
            init.trunc_normal((1, 1, 1, 1, T, C), rng))

        stages: List[SwinStage4d] = []
        dim = C
        n_stage = len(cfg.depths)
        for i in range(n_stage):
            win = cfg.window_first if i == 0 else cfg.window_rest
            stages.append(SwinStage4d(
                dim, cfg.num_heads[i], win, depth=cfg.depths[i],
                downsample=(i < n_stage - 1), mlp_ratio=cfg.mlp_ratio,
                drop=cfg.dropout, use_checkpoint=cfg.use_checkpoint,
                rng=rng,
            ))
            if i < n_stage - 1:
                dim *= 2
        self.stages = ModuleList(stages)

        # --- decoder -----------------------------------------------------
        # One up-block per merging, mirrored: ConvT3d(2×) + BN + GELU,
        # then skip-concat + 1×1×1 fusion (U-Net style, paper Fig. 2).
        ups, fuses, fuse_norms = [], [], []
        for i in range(n_stage - 1, 0, -1):
            d_in = C * (2 ** i)
            d_out = C * (2 ** (i - 1))
            ups.append(ConvTranspose3d(d_in, d_out, 2, stride=2, rng=rng))
            fuses.append(Conv3d(2 * d_out, d_out, 1, rng=rng))
            fuse_norms.append(BatchNorm(d_out))
        self.ups = ModuleList(ups)
        self.up_norms = ModuleList([BatchNorm(u.out_channels) for u in ups])
        self.fuses = ModuleList(fuses)
        self.fuse_norms = ModuleList(fuse_norms)
        self.act = GELU()

        self.recover3d = PatchRecover3d(C, cfg.n_vars_3d, cfg.patch3d, rng=rng)
        self.recover2d = PatchRecover2d(C, cfg.n_vars_2d, cfg.patch2d, rng=rng)

    # ------------------------------------------------------------------
    # parameter accounting (paper Table IV reports encoder + decoder)
    # ------------------------------------------------------------------
    def parameter_breakdown(self) -> Dict[str, int]:
        """Parameter counts split into encoder and decoder groups."""
        encoder_mods = [self.embed3d, self.embed2d] + list(self.stages)
        enc = sum(m.num_parameters() for m in encoder_mods)
        enc += self.pos_spatial.size + self.pos_temporal.size
        total = self.num_parameters()
        return {"encoder": enc, "decoder": total - enc, "total": total}

    # ------------------------------------------------------------------
    def forward(self, x3d: Tensor, x2d: Tensor) -> Tuple[Tensor, Tensor]:
        """Predict interior fields for one episode.

        Parameters
        ----------
        x3d: ``(B, 3, H, W, D, T)`` — slot 0 carries the full initial
            condition of (u, v, w); slots 1..T−1 carry boundary rims only.
        x2d: ``(B, 1, H, W, T)`` — same convention for ζ.

        Returns
        -------
        ``(y3d, y2d)`` with shapes matching the inputs: predicted
        (u, v, w) volumes and ζ planes for t₁..T.
        """
        cfg = self.config
        e3 = self.embed3d(x3d)                      # (B, C, H', W', D3, T)
        e2 = self.embed2d(x2d)                      # (B, C, H', W', 1, T)
        x = concatenate([e3, e2], axis=4)           # depth concat
        x = x.transpose(0, 2, 3, 4, 5, 1)           # channels-last
        # sum the (small) positional tables first: one broadcast add
        # over the full token lattice instead of two
        x = x + (self.pos_spatial + self.pos_temporal)

        skips: List[Tensor] = []
        for stage in self.stages:
            x, pre_merge = stage(x)
            skips.append(pre_merge)

        # decoder operates channels-first with time folded into batch
        y = skips[-1]
        for k, (up, up_norm, fuse, fuse_norm) in enumerate(
                zip(self.ups, self.up_norms, self.fuses, self.fuse_norms)):
            skip = skips[len(self.stages) - 2 - k]
            y = y.transpose(0, 5, 1, 2, 3, 4)        # (B, C, H, W, D, T)
            yf, B, T = _fold_time(y)
            yf = self.act(up_norm(up(yf)))
            sk = skip.transpose(0, 5, 1, 2, 3, 4)
            skf, _, _ = _fold_time(sk)
            yf = concatenate([yf, skf], axis=1)
            yf = self.act(fuse_norm(fuse(yf)))
            y = _unfold_time(yf, B, T)               # (B, C, H, W, D, T)
            y = y.transpose(0, 2, 3, 4, 5, 1)        # channels-last again

        y = y.transpose(0, 5, 1, 2, 3, 4)            # (B, C, H', W', D'', T)
        d3 = cfg.mesh[2] // cfg.patch3d[2]
        y3 = y[:, :, :, :, :d3, :]                   # volume part
        y2 = y[:, :, :, :, d3, :]                    # surface slot
        out3d = self.recover3d(y3)
        out2d = self.recover2d(y2)
        return out3d, out2d
