"""4-D Swin Transformer surrogate — the paper's primary contribution."""

from .window import (
    compute_attention_mask,
    compute_shift_sizes,
    effective_window,
    num_windows,
    window_partition,
    window_reverse,
)
from .checkpoint import checkpoint, CheckpointStats
from .patch import (
    PatchEmbed2d,
    PatchEmbed3d,
    PatchMerging4d,
    PatchRecover2d,
    PatchRecover3d,
)
from .blocks import SwinBlock4d, SwinStage4d
from .model import CoastalSurrogate, SurrogateConfig
from .flops import FlopBreakdown, attention_flops, scale_compute_time, surrogate_flops

__all__ = [
    "window_partition",
    "window_reverse",
    "effective_window",
    "compute_shift_sizes",
    "compute_attention_mask",
    "num_windows",
    "checkpoint",
    "CheckpointStats",
    "PatchEmbed2d",
    "PatchEmbed3d",
    "PatchMerging4d",
    "PatchRecover2d",
    "PatchRecover3d",
    "SwinBlock4d",
    "SwinStage4d",
    "CoastalSurrogate",
    "SurrogateConfig",
    "FlopBreakdown",
    "surrogate_flops",
    "attention_flops",
    "scale_compute_time",
]
