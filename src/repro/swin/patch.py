"""Patch embedding, merging, and recovery (paper §III-C).

* :class:`PatchEmbed3d` / :class:`PatchEmbed2d` — split the 3-D velocity
  volume and the 2-D free-surface plane into patches and project them to
  a shared ``C``-dimensional latent space; the 2-D plane becomes one
  extra "depth" slot so both can be concatenated along depth.
* :class:`PatchMerging4d` — hierarchical downsampling: 2×2×2 spatial
  neighbourhoods concatenated channel-wise (8C) then projected to 2C;
  the temporal axis is untouched (paper Fig. 4).
* :class:`PatchRecover3d` / :class:`PatchRecover2d` — decoder heads that
  upsample patches back to the original mesh via transposed convolutions
  followed by 1×1 refinement convolutions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor
from ..nn import (
    BatchNorm,
    Conv2d,
    Conv3d,
    ConvTranspose2d,
    ConvTranspose3d,
    GELU,
    Linear,
    Module,
)

__all__ = [
    "PatchEmbed3d",
    "PatchEmbed2d",
    "PatchMerging4d",
    "PatchRecover3d",
    "PatchRecover2d",
]


def _fold_time(x: Tensor) -> Tuple[Tensor, int, int]:
    """(B, C, *S, T) → (B*T, C, *S); returns (folded, B, T)."""
    B = x.shape[0]
    T = x.shape[-1]
    nd = x.ndim
    # (B, C, *S, T) -> (B, T, C, *S)
    perm = (0, nd - 1, 1) + tuple(range(2, nd - 1))
    xt = x.transpose(perm)
    return xt.reshape((B * T,) + xt.shape[2:]), B, T


def _unfold_time(x: Tensor, B: int, T: int) -> Tensor:
    """(B*T, C, *S) → (B, C, *S, T)."""
    xt = x.reshape((B, T) + x.shape[1:])
    nd = xt.ndim
    perm = (0, 2) + tuple(range(3, nd)) + (1,)
    return xt.transpose(perm)


class PatchEmbed3d(Module):
    """Embed ``(B, C_in, H, W, D, T)`` into ``(B, C, H/PH, W/PW, D/PD, T)``.

    Implemented as a strided 3-D convolution (kernel = stride = patch),
    applied per time slice with the time axis folded into the batch.
    """

    def __init__(self, in_channels: int, embed_dim: int,
                 patch: Tuple[int, int, int],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.patch = tuple(patch)
        self.proj = Conv3d(in_channels, embed_dim, self.patch,
                           stride=self.patch, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        for ax, p in zip(x.shape[2:5], self.patch):
            if ax % p != 0:
                raise ValueError(
                    f"spatial dim {ax} not divisible by patch {p}; "
                    "pad the mesh first (repro.data.preprocess.pad_mesh)"
                )
        folded, B, T = _fold_time(x)
        emb = self.proj(folded)
        return _unfold_time(emb, B, T)


class PatchEmbed2d(Module):
    """Embed ``(B, C_in, H, W, T)`` into ``(B, C, H/PH, W/PW, 1, T)``.

    The singleton depth axis lets the surface plane concatenate with the
    3-D volume along depth, exactly as described in the paper.
    """

    def __init__(self, in_channels: int, embed_dim: int,
                 patch: Tuple[int, int],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.patch = tuple(patch)
        self.proj = Conv2d(in_channels, embed_dim, self.patch,
                           stride=self.patch, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        folded, B, T = _fold_time(x)
        emb = self.proj(folded)          # (B*T, C, H', W')
        emb = _unfold_time(emb, B, T)    # (B, C, H', W', T)
        return emb.reshape(emb.shape[:4] + (1,) + emb.shape[4:])


class PatchMerging4d(Module):
    """Spatial 2× downsampling with channel doubling (time untouched).

    Input/output layout is channels-last ``(B, H, W, D, T, C)`` — the
    layout used between Swin blocks.
    """

    def __init__(self, dim: int, rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.dim = dim
        self.reduction = Linear(8 * dim, 2 * dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        B, H, W, D, T, C = x.shape
        if H % 2 or W % 2 or D % 2:
            raise ValueError(
                f"PatchMerging4d needs even spatial dims, got {(H, W, D)}"
            )
        x = x.reshape(B, H // 2, 2, W // 2, 2, D // 2, 2, T, C)
        x = x.transpose(0, 1, 3, 5, 7, 2, 4, 6, 8)
        x = x.reshape(B, H // 2, W // 2, D // 2, T, 8 * C)
        return self.reduction(x)


class PatchRecover3d(Module):
    """Recover 3-D variables: latent patches → full-resolution (u, v, w).

    ConvTranspose3d (kernel = stride = patch) + BatchNorm + GELU, then a
    1×1×1 convolution to the physical channel count (paper §III-C).
    """

    def __init__(self, embed_dim: int, out_channels: int,
                 patch: Tuple[int, int, int],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.patch = tuple(patch)
        self.up = ConvTranspose3d(embed_dim, embed_dim, self.patch,
                                  stride=self.patch, rng=rng)
        self.norm = BatchNorm(embed_dim)
        self.act = GELU()
        self.head = Conv3d(embed_dim, out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """(B, C, H', W', D', T) → (B, out, H'*PH, W'*PW, D'*PD, T)."""
        folded, B, T = _fold_time(x)
        y = self.head(self.act(self.norm(self.up(folded))))
        return _unfold_time(y, B, T)


class PatchRecover2d(Module):
    """Recover the 2-D free-surface variable ζ at full resolution."""

    def __init__(self, embed_dim: int, out_channels: int,
                 patch: Tuple[int, int],
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        self.patch = tuple(patch)
        self.up = ConvTranspose2d(embed_dim, embed_dim, self.patch,
                                  stride=self.patch, rng=rng)
        self.norm = BatchNorm(embed_dim)
        self.act = GELU()
        self.head = Conv2d(embed_dim, out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """(B, C, H', W', T) → (B, out, H'*PH, W'*PW, T)."""
        folded, B, T = _fold_time(x)
        y = self.head(self.act(self.norm(self.up(folded))))
        return _unfold_time(y, B, T)
