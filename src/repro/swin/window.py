"""4-D window partitioning, reversal, cyclic shift and attention masks.

Implements the geometric machinery of the 4-D Swin Transformer
(paper §III-C, Fig. 3): tokens laid out on an ``(H, W, D, T)`` lattice
are grouped into non-overlapping windows of size
``(MH, MW, MD, MT)`` for W-MSA; SW-MSA cyclically shifts the lattice by
half a window before grouping, and an additive mask blocks attention
between tokens that wrapped around different seams.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence, Tuple

import numpy as np

from ..tensor import Tensor

__all__ = [
    "window_partition",
    "window_reverse",
    "effective_window",
    "compute_shift_sizes",
    "compute_attention_mask",
    "num_windows",
]

NEG_INF = -1e4  # large-negative mask value (fp16-safe, cf. paper's FP16 path)


def effective_window(dims: Sequence[int], window: Sequence[int]) -> Tuple[int, ...]:
    """Clamp window sizes to the lattice dims (window ≥ dim ⇒ global attn)."""
    return tuple(min(w, d) for w, d in zip(window, dims))


def compute_shift_sizes(dims: Sequence[int], window: Sequence[int]) -> Tuple[int, ...]:
    """Half-window shifts; zero along axes where the window spans the dim."""
    eff = effective_window(dims, window)
    return tuple(0 if w >= d else w // 2 for w, d in zip(eff, dims))


def num_windows(dims: Sequence[int], window: Sequence[int]) -> int:
    eff = effective_window(dims, window)
    n = 1
    for d, w in zip(dims, eff):
        if d % w != 0:
            raise ValueError(f"dim {d} not divisible by window {w}")
        n *= d // w
    return n


def window_partition(x: Tensor, window: Sequence[int]) -> Tensor:
    """Group a token lattice into windows.

    Parameters
    ----------
    x: ``(B, H, W, D, T, C)`` tensor.
    window: ``(MH, MW, MD, MT)``; each must divide the matching dim.

    Returns
    -------
    ``(B * num_windows, MH*MW*MD*MT, C)`` tensor of per-window tokens.
    """
    B, H, W, D, T, C = x.shape
    mh, mw, md, mt = effective_window((H, W, D, T), window)
    x = x.reshape(B, H // mh, mh, W // mw, mw, D // md, md, T // mt, mt, C)
    # bring window-index axes together, window-content axes together
    x = x.transpose(0, 1, 3, 5, 7, 2, 4, 6, 8, 9)
    return x.reshape(-1, mh * mw * md * mt, C)


def window_reverse(windows: Tensor, window: Sequence[int],
                   dims: Sequence[int]) -> Tensor:
    """Inverse of :func:`window_partition`.

    Parameters
    ----------
    windows: ``(B * num_windows, N, C)``.
    window: the window shape used to partition.
    dims: original ``(H, W, D, T)``.
    """
    H, W, D, T = dims
    mh, mw, md, mt = effective_window(dims, window)
    C = windows.shape[-1]
    B = windows.shape[0] // ((H // mh) * (W // mw) * (D // md) * (T // mt))
    x = windows.reshape(B, H // mh, W // mw, D // md, T // mt,
                        mh, mw, md, mt, C)
    x = x.transpose(0, 1, 5, 2, 6, 3, 7, 4, 8, 9)
    return x.reshape(B, H, W, D, T, C)


@lru_cache(maxsize=64)
def compute_attention_mask(dims: Tuple[int, ...], window: Tuple[int, ...],
                           shift: Tuple[int, ...]) -> np.ndarray:
    """Additive attention mask for SW-MSA.

    After a cyclic shift, tokens from opposite edges of the domain land in
    the same window; they must not attend to each other.  Following Liu et
    al., every lattice site is labelled by which shift region it falls in;
    pairs with different labels get ``NEG_INF``.

    Returns
    -------
    ``(num_windows, N, N)`` float32 array (N = window volume), broadcast
    over batch and heads by the caller.
    """
    eff = effective_window(dims, window)
    if not any(shift):
        n = int(np.prod(eff))
        return np.zeros((num_windows(dims, eff), n, n), dtype=np.float32)

    label = np.zeros(dims, dtype=np.int64)
    cnt = 0
    # iterate the cartesian product of per-axis slice triples
    def axis_slices(d: int, w: int, s: int):
        if s == 0:
            return [slice(0, d)]
        return [slice(0, d - w), slice(d - w, d - s), slice(d - s, d)]

    import itertools
    all_slices = [axis_slices(d, w, s) for d, w, s in zip(dims, eff, shift)]
    for combo in itertools.product(*all_slices):
        label[combo] = cnt
        cnt += 1

    lab = window_partition(
        Tensor(label[None, ..., None].astype(np.float32)), eff
    ).data[..., 0]  # (nW, N)
    diff = lab[:, :, None] - lab[:, None, :]
    mask = np.where(diff != 0, np.float32(NEG_INF), np.float32(0.0))
    return mask.astype(np.float32)
