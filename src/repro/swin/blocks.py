"""4-D Swin Transformer blocks (paper Eq. 3, Fig. 3b).

A :class:`SwinBlock4d` is one LN → (S)W-MSA → residual → LN → MLP →
residual unit; blocks come in W-MSA / SW-MSA pairs inside a
:class:`SwinStage4d`, optionally followed by patch merging.  Activation
checkpointing can wrap the attention sub-path, matching the paper's
memory optimisation (store SW-MSA boundaries, recompute the rest).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..tensor import Tensor
from ..nn import LayerNorm, MLP, Module, ModuleList, MultiHeadSelfAttention
from ..nn import init
from .checkpoint import checkpoint
from .patch import PatchMerging4d
from .window import (
    compute_attention_mask,
    compute_shift_sizes,
    effective_window,
    window_partition,
    window_reverse,
)

__all__ = ["SwinBlock4d", "SwinStage4d"]


class SwinBlock4d(Module):
    """One 4-D Swin block operating on ``(B, H, W, D, T, C)`` tokens.

    Parameters
    ----------
    dim: channel width ``C``.
    num_heads: attention heads.
    window: ``(MH, MW, MD, MT)`` window shape.
    shifted: apply the half-window cyclic shift (SW-MSA) before
        partitioning, enabling cross-window information flow.
    mlp_ratio: hidden expansion of the feed-forward block.
    use_checkpoint: recompute the attention path on backward instead of
        storing its activations.
    """

    def __init__(self, dim: int, num_heads: int, window: Sequence[int],
                 shifted: bool = False, mlp_ratio: float = 4.0,
                 drop: float = 0.0, use_checkpoint: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.dim = dim
        self.window = tuple(window)
        self.shifted = shifted
        self.use_checkpoint = use_checkpoint
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, attn_drop=drop,
                                           proj_drop=drop, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, hidden_ratio=mlp_ratio, drop=drop, rng=rng)

    # ------------------------------------------------------------------
    def _attention_path(self, x: Tensor) -> Tensor:
        """LN → window partition → MSA (masked if shifted) → reverse."""
        B, H, W, D, T, C = x.shape
        dims = (H, W, D, T)
        win = effective_window(dims, self.window)
        shift = compute_shift_sizes(dims, self.window) if self.shifted \
            else (0, 0, 0, 0)

        h = self.norm1(x)
        if any(shift):
            h = h.roll(tuple(-s for s in shift), axis=(1, 2, 3, 4))
        tokens = window_partition(h, win)

        mask = None
        if any(shift):
            # (nW, 1, N, N): the attention layer broadcasts it over the
            # batch (window_partition lays tokens out batch-slowest), so
            # no tiled copy is ever materialised.
            mask = compute_attention_mask(dims, win, shift)[:, None, :, :]

        tokens = self.attn(tokens, mask=mask)
        h = window_reverse(tokens, win, dims)
        if any(shift):
            h = h.roll(shift, axis=(1, 2, 3, 4))
        return h

    def forward(self, x: Tensor) -> Tensor:
        if self.use_checkpoint:
            x = x + checkpoint(self._attention_path, x)
        else:
            x = x + self._attention_path(x)
        return x + self.mlp(self.norm2(x))


class SwinStage4d(Module):
    """A W-MSA/SW-MSA block pair, optionally followed by patch merging.

    Returns ``(out, pre_merge)`` where ``pre_merge`` is the feature map
    before downsampling — consumed by the decoder skip connections
    (paper Fig. 2).
    """

    def __init__(self, dim: int, num_heads: int, window: Sequence[int],
                 depth: int = 2, downsample: bool = True,
                 mlp_ratio: float = 4.0, drop: float = 0.0,
                 use_checkpoint: bool = False,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        blocks = []
        for i in range(depth):
            blocks.append(SwinBlock4d(
                dim, num_heads, window, shifted=(i % 2 == 1),
                mlp_ratio=mlp_ratio, drop=drop,
                use_checkpoint=use_checkpoint, rng=rng,
            ))
        self.blocks = ModuleList(blocks)
        self.downsample = PatchMerging4d(dim, rng=rng) if downsample else None
        self.out_dim = 2 * dim if downsample else dim

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        for block in self.blocks:
            x = block(x)
        pre_merge = x
        if self.downsample is not None:
            x = self.downsample(x)
        return x, pre_merge
