"""Activation checkpointing (paper §III-D).

The paper cuts peak GPU memory by storing only the activations at
SW-MSA block boundaries and recomputing everything else in the backward
pass, doubling the feasible per-GPU batch size.  This module provides
the same mechanism for our engine: :func:`checkpoint` runs a module's
forward under ``no_grad`` (so no interior graph is retained) and splices
a recompute-on-backward node into the surrounding graph.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..tensor import Tensor, is_grad_enabled, no_grad

__all__ = ["checkpoint", "CheckpointStats"]


class CheckpointStats:
    """Counters used by tests/benchmarks to prove recomputation happens."""

    forward_calls: int = 0
    recompute_calls: int = 0

    @classmethod
    def reset(cls) -> None:
        cls.forward_calls = 0
        cls.recompute_calls = 0


def checkpoint(fn: Callable[[Tensor], Tensor], x: Tensor) -> Tensor:
    """Apply ``fn`` to ``x`` without storing interior activations.

    The forward pass runs in inference mode; only ``x`` (the boundary
    activation) is retained.  On backward, ``fn`` is re-executed with
    gradients enabled to rebuild the interior graph, which is then
    differentiated with the incoming gradient.  Parameters referenced
    inside ``fn`` receive their gradients through the recomputed graph.

    Notes
    -----
    ``fn`` must be deterministic between the two executions — dropout
    layers must either be disabled or use a replayable RNG.  The surrogate
    trains with dropout 0, matching the paper's configuration.
    """
    CheckpointStats.forward_calls += 1
    if not (is_grad_enabled() and
            (x.requires_grad or _any_param_requires_grad(fn))):
        return fn(x)

    with no_grad():
        out_data = fn(x).data

    out = Tensor(out_data)
    out.requires_grad = True
    out._parents = (x,)

    def _bw(g: np.ndarray) -> None:
        CheckpointStats.recompute_calls += 1
        x_live = Tensor(x.data, requires_grad=True)
        recomputed = fn(x_live)
        recomputed.backward(g)
        if x.requires_grad and x_live.grad is not None:
            x._accum(x_live.grad)

    out._backward = _bw
    return out


def _any_param_requires_grad(fn: Callable) -> bool:
    """Best-effort check whether ``fn`` closes over trainable parameters."""
    owner = getattr(fn, "__self__", None)
    if owner is not None and hasattr(owner, "parameters"):
        return any(p.requires_grad for p in owner.parameters())
    return True  # conservative: assume trainable closure
