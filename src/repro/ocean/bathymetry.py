"""Synthetic estuary bathymetry.

The paper's domain is Charlotte Harbor: a shallow estuary sheltered by
barrier islands, connected to the Gulf through tidal inlets, and fed by
a river at its head.  We synthesise a bathymetry with the same
morphological elements — offshore shelf, barrier islands with inlet
gaps, a shallow lagoon, dredged channels, and a river arm — so the
surrogate faces the same learning problem: tidal waves entering through
narrow inlets and propagating across a shallow, frictional basin.

Depths are positive below the reference surface; land cells carry
``depth ≤ 0`` and are masked by the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .grid import CurvilinearGrid

__all__ = ["BathymetryConfig", "synth_estuary_bathymetry", "wet_mask"]


@dataclass(frozen=True)
class BathymetryConfig:
    """Morphology parameters (all lengths in metres, depths in metres)."""

    shelf_depth: float = 18.0        # offshore depth at the west boundary
    lagoon_depth: float = 4.0        # typical depth inside the estuary
    channel_depth: float = 9.0       # dredged navigation channel
    river_depth: float = 6.0
    barrier_x_frac: float = 0.28     # barrier island position (x fraction)
    barrier_width_frac: float = 0.045
    inlet_y_fracs: Tuple[float, ...] = (0.30, 0.62)  # inlet gap centres
    inlet_half_width_frac: float = 0.045
    river_x_frac: float = 0.62       # river channel x position
    river_start_y_frac: float = 0.80
    land_east_frac: float = 0.88     # mainland shoreline (east side)
    noise_amp: float = 0.25
    seed: int = 7


def synth_estuary_bathymetry(grid: CurvilinearGrid,
                             cfg: BathymetryConfig = BathymetryConfig()
                             ) -> np.ndarray:
    """Return depth ``h`` (ny, nx), positive = water, ≤0 = land."""
    ny, nx = grid.ny, grid.nx
    xf = grid.x_axis.centers / grid.x_axis.length   # 0..1 west→east
    yf = grid.y_axis.centers / grid.y_axis.length   # 0..1 south→north
    X, Y = np.meshgrid(xf, yf)

    # Offshore shelf shoaling toward the barrier, lagoon beyond it.
    h = cfg.shelf_depth * (1.0 - 0.75 * X / max(cfg.barrier_x_frac, 1e-9))
    lagoon = X > cfg.barrier_x_frac
    h[lagoon] = cfg.lagoon_depth * (1.0 - 0.35 * (X[lagoon] - cfg.barrier_x_frac))

    # Barrier islands: a land strip at barrier_x_frac with inlet gaps.
    barrier = np.abs(X - cfg.barrier_x_frac) < cfg.barrier_width_frac
    in_inlet = np.zeros_like(barrier)
    for iy in cfg.inlet_y_fracs:
        in_inlet |= np.abs(Y - iy) < cfg.inlet_half_width_frac
    h[barrier & ~in_inlet] = -1.5       # island land
    h[barrier & in_inlet] = cfg.channel_depth  # deep inlet throat

    # Dredged channel from each inlet toward the river mouth.
    for iy in cfg.inlet_y_fracs:
        along = np.clip((X - cfg.barrier_x_frac) /
                        max(cfg.river_x_frac - cfg.barrier_x_frac, 1e-9), 0, 1)
        channel_y = iy + (cfg.river_start_y_frac - iy) * along
        in_channel = (np.abs(Y - channel_y) < 0.02) & (X > cfg.barrier_x_frac) \
            & (X < cfg.river_x_frac + 0.02)
        h[in_channel] = np.maximum(
            h[in_channel],
            cfg.channel_depth * (1 - 0.3 * along[in_channel]))

    # River arm entering from the north.
    river = (np.abs(X - cfg.river_x_frac) < 0.03) & (Y > cfg.river_start_y_frac)
    h[river] = cfg.river_depth

    # Mainland to the east and at the north (except the river).
    h[(X > cfg.land_east_frac) & ~river] = -2.0
    h[(Y > 0.96) & ~river] = -2.0

    # Gentle deterministic bathymetric noise (shoals and holes).
    rng = np.random.default_rng(cfg.seed)
    noise = rng.normal(0.0, 1.0, size=(ny, nx))
    # smooth the noise with a separable box filter to ~3-cell correlation
    for _ in range(3):
        noise[1:-1, :] = (noise[:-2, :] + noise[1:-1, :] + noise[2:, :]) / 3.0
        noise[:, 1:-1] = (noise[:, :-2] + noise[:, 1:-1] + noise[:, 2:]) / 3.0
    water = h > 0
    h[water] = np.maximum(h[water] + cfg.noise_amp * noise[water], 0.8)

    return h.astype(np.float64)


def wet_mask(h: np.ndarray, min_depth: float = 0.0) -> np.ndarray:
    """Boolean mask of wet (ocean) cells."""
    return h > min_depth
