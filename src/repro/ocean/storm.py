"""Storm forcing: wind stress and inverse-barometer pressure (paper §V).

The paper's archive carries wind and air-pressure forcing variables and
names *storm surge* as the first future-work extension.  This module
adds both to the barotropic solver: a parametric cyclone (Holland-type
wind profile) or steady wind supplies surface stress τ = ρₐ C_d |W| W
and a sea-level-pressure field supplies the inverse-barometer gradient
force, turning the tidal model into a tide + surge model.

Usage::

    storm = ParametricCyclone(track=..., ...)
    solver = ShallowWaterSolver(grid, depth, forcing,
                                config=SWEConfig(),)
    surge = StormForcedSolver(solver, storm)
    state = surge.step(state)           # tide + wind + pressure
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .grid import CurvilinearGrid
from .swe import ShallowWaterSolver, ShallowWaterState

__all__ = ["SteadyWind", "ParametricCyclone", "StormForcedSolver"]

RHO_AIR = 1.225        # kg/m³
RHO_WATER = 1025.0     # kg/m³
P_AMBIENT = 101_325.0  # Pa


def _wind_drag_coefficient(speed: np.ndarray) -> np.ndarray:
    """Large & Pond (1981) style drag, capped at hurricane speeds."""
    cd = (0.49 + 0.065 * speed) * 1e-3
    return np.clip(cd, 1.2e-3, 3.5e-3)


@dataclass(frozen=True)
class SteadyWind:
    """Spatially uniform wind — the simplest surge driver."""

    u10: float            # eastward wind at 10 m [m/s]
    v10: float            # northward wind [m/s]

    def wind(self, grid: CurvilinearGrid, t: float
             ) -> Tuple[np.ndarray, np.ndarray]:
        shape = (grid.ny, grid.nx)
        return (np.full(shape, self.u10), np.full(shape, self.v10))

    def pressure(self, grid: CurvilinearGrid, t: float) -> np.ndarray:
        return np.full((grid.ny, grid.nx), P_AMBIENT)


@dataclass(frozen=True)
class ParametricCyclone:
    """Holland-profile cyclone translating across the domain.

    The wind field is the Holland (1980) gradient-wind profile with
    shape parameter B = 1.4: azimuthal speed
    ``max_wind · sqrt((r_mw/r)^B · exp(1 − (r_mw/r)^B))``, which peaks
    at exactly ``max_wind`` on the ``r = radius_max_wind`` ring and
    decays both inward (calm eye) and outward.  Rotation is cyclonic
    for the northern hemisphere (counter-clockwise when the x axis
    points east and the y axis north), with the surface wind rotated
    a further ``inflow_angle_rad`` toward the centre.  The pressure
    field is the matching Holland profile
    ``p(r) = p_c + Δp·exp(−(r_mw/r)^B)``, i.e. the full
    ``central_pressure_drop`` below ambient at the centre, relaxing to
    ``P_AMBIENT`` far away.

    The differentiable serving-side mirror of this profile is
    :class:`repro.workflow.sensitivity.StormOverlay` (same
    parameterisation and sign conventions, arranged for smooth
    gradients); keep the two in sync.

    Parameters
    ----------
    x0, y0: storm-centre position at t = 0 [m, in the grid's
        projected coordinates — the same axes as
        ``CurvilinearGrid.x_axis``/``y_axis`` centres].
    vx, vy: translation velocity of the centre [m/s]; positive vx
        moves the storm toward +x (east), positive vy toward +y
        (north).  The centre at time t is ``(x0 + vx·t, y0 + vy·t)``.
    max_wind: peak gradient-wind speed [m/s], attained at
        ``radius_max_wind``; must be positive.
    radius_max_wind: radius of maximum winds [m] — larger values make
        a broader, flatter storm.
    central_pressure_drop: ambient minus central sea-level pressure
        [Pa]; positive numbers mean a *low* at the centre (4 000 Pa
        = 40 hPa, a strong hurricane).
    inflow_angle_rad: cross-isobar inflow rotation [rad], positive
        turning the surface wind from pure azimuthal flow inward
        toward the centre (typical observed values ≈ 0.2–0.4).
    """

    x0: float
    y0: float
    vx: float = 5.0
    vy: float = 0.0
    max_wind: float = 30.0
    radius_max_wind: float = 25_000.0
    central_pressure_drop: float = 4_000.0
    inflow_angle_rad: float = 0.35

    def _center(self, t: float) -> Tuple[float, float]:
        return self.x0 + self.vx * t, self.y0 + self.vy * t

    def wind(self, grid: CurvilinearGrid, t: float
             ) -> Tuple[np.ndarray, np.ndarray]:
        cx, cy = self._center(t)
        X = np.broadcast_to(grid.x_axis.centers[None, :],
                            (grid.ny, grid.nx))
        Y = np.broadcast_to(grid.y_axis.centers[:, None],
                            (grid.ny, grid.nx))
        dx, dy = X - cx, Y - cy
        r = np.hypot(dx, dy)
        r_safe = np.maximum(r, 1e-3)
        # Holland-style radial speed profile (B = 1.4)
        B = 1.4
        ratio = np.clip(self.radius_max_wind / r_safe, 1e-6, 1e6)
        speed = self.max_wind * np.sqrt(
            ratio ** B * np.exp(1.0 - ratio ** B))
        # cyclonic (counter-clockwise, NH) rotation + inflow angle
        ang = np.arctan2(dy, dx) + np.pi / 2 + self.inflow_angle_rad
        return speed * np.cos(ang), speed * np.sin(ang)

    def pressure(self, grid: CurvilinearGrid, t: float) -> np.ndarray:
        cx, cy = self._center(t)
        X = np.broadcast_to(grid.x_axis.centers[None, :],
                            (grid.ny, grid.nx))
        Y = np.broadcast_to(grid.y_axis.centers[:, None],
                            (grid.ny, grid.nx))
        r = np.hypot(X - cx, Y - cy)
        ratio = np.clip(self.radius_max_wind / np.maximum(r, 1e-3),
                        1e-6, 1e6)
        # Holland: p(r) = p_c + Δp · exp(−(r_mw/r)^B); → p_c at the
        # centre, → ambient far away
        central = P_AMBIENT - self.central_pressure_drop
        return central + self.central_pressure_drop * np.exp(-ratio ** 1.4)


class StormForcedSolver:
    """Wrap a barotropic solver with wind stress + pressure gradients.

    Each step adds, to the wrapped solver's momentum tendencies,

    * surface stress  τ/(ρ_w H) with τ = ρₐ C_d(|W|) |W| W, and
    * the inverse-barometer force −(1/ρ_w) ∇p_air,

    applied as velocity increments over the solver's own Δt so the
    underlying continuity/verification machinery is untouched.
    """

    def __init__(self, solver: ShallowWaterSolver, storm):
        self.solver = solver
        self.storm = storm

    @property
    def dt(self) -> float:
        return self.solver.dt

    def step(self, state: ShallowWaterState) -> ShallowWaterState:
        solver = self.solver
        grid = solver.grid
        out = solver.step(state)

        wu, wv = self.storm.wind(grid, state.t)
        speed = np.hypot(wu, wv)
        cd = _wind_drag_coefficient(speed)
        tau_x = RHO_AIR * cd * speed * wu       # N/m² at cell centres
        tau_y = RHO_AIR * cd * speed * wv

        H = solver.total_depth(out.zeta)
        p = self.storm.pressure(grid, state.t)

        # wind stress and pressure-gradient accelerations on faces
        accel_u = grid.center_to_u(tau_x / (RHO_WATER * H)) \
            - grid.ddx_at_u(p) / RHO_WATER
        accel_v = grid.center_to_v(tau_y / (RHO_WATER * H)) \
            - grid.ddy_at_v(p) / RHO_WATER

        out.u += solver.dt * accel_u
        out.v += solver.dt * accel_v
        out.u[~solver.u_open] = 0.0
        out.v[~solver.v_open] = 0.0
        return out

    def run(self, state: ShallowWaterState, duration: float
            ) -> ShallowWaterState:
        n = max(1, int(round(duration / self.dt)))
        for _ in range(n):
            state = self.step(state)
        return state
