"""Tidal harmonic analysis.

Classical least-squares fitting of harmonic constituents to a water
level record — the standard oceanographic tool for validating tidal
models.  Used to check that (a) the solver reproduces the forced
constituents at the boundary and propagates them plausibly into the
estuary, and (b) the surrogate preserves the constituent structure of
the solver (amplitude/phase per constituent is a much sharper
validation than pointwise RMSE, cf. paper Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tides import GULF_CONSTITUENTS, TidalConstituent

__all__ = ["HarmonicFit", "fit_constituents", "compare_constituents"]


@dataclass(frozen=True)
class HarmonicFit:
    """Result of a tidal harmonic analysis of one series."""

    mean_level: float
    amplitudes: Dict[str, float]     # per constituent [m]
    phases: Dict[str, float]         # per constituent [rad]
    residual_rms: float              # RMS of the unfitted remainder [m]

    def amplitude_vector(self, names: Sequence[str]) -> np.ndarray:
        return np.array([self.amplitudes[n] for n in names])


def fit_constituents(times: np.ndarray, series: np.ndarray,
                     constituents: Sequence[TidalConstituent]
                     = GULF_CONSTITUENTS) -> HarmonicFit:
    """Least-squares harmonic decomposition.

    Solves ``ζ(t) ≈ m + Σ_k a_k cos(ω_k t) + b_k sin(ω_k t)`` and
    converts each (a, b) pair to amplitude/phase.

    Parameters
    ----------
    times: sample instants [s]; must span enough cycles to separate the
        constituents being fitted (the Rayleigh criterion — at minimum
        one beat period of the closest frequency pair).
    series: water level samples [m], same length as ``times``.
    """
    times = np.asarray(times, dtype=np.float64)
    series = np.asarray(series, dtype=np.float64)
    if times.shape != series.shape:
        raise ValueError("times and series must have equal shapes")
    if times.size < 2 * len(constituents) + 1:
        raise ValueError(
            f"{times.size} samples cannot constrain "
            f"{2 * len(constituents) + 1} harmonic coefficients")

    cols = [np.ones_like(times)]
    for c in constituents:
        omega = 2.0 * np.pi / c.period_s
        cols.append(np.cos(omega * times))
        cols.append(np.sin(omega * times))
    A = np.stack(cols, axis=1)
    coef, *_ = np.linalg.lstsq(A, series, rcond=None)

    amplitudes, phases = {}, {}
    for k, c in enumerate(constituents):
        a, b = coef[1 + 2 * k], coef[2 + 2 * k]
        amplitudes[c.name] = float(np.hypot(a, b))
        phases[c.name] = float(np.arctan2(b, a))
    resid = series - A @ coef
    return HarmonicFit(
        mean_level=float(coef[0]),
        amplitudes=amplitudes,
        phases=phases,
        residual_rms=float(np.sqrt(np.mean(resid ** 2))),
    )


def compare_constituents(reference: HarmonicFit, candidate: HarmonicFit,
                         names: Optional[Sequence[str]] = None
                         ) -> List[Tuple[str, float, float, float]]:
    """Per-constituent (name, ref amp, cand amp, phase error [rad]).

    Phase errors are wrapped to [−π, π].
    """
    names = list(names) if names is not None \
        else list(reference.amplitudes)
    out = []
    for n in names:
        dphi = candidate.phases[n] - reference.phases[n]
        dphi = (dphi + np.pi) % (2 * np.pi) - np.pi
        out.append((n, reference.amplitudes[n], candidate.amplitudes[n],
                    float(dphi)))
    return out
