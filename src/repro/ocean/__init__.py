"""ROMS-like coastal ocean circulation substrate.

A from-scratch NumPy tidal circulation model of a Charlotte-Harbor-like
estuary: non-uniform Arakawa-C grid, synthetic barrier-island/inlet
bathymetry, harmonic tidal forcing, split-explicit barotropic solver,
and sigma-layer vertical structure.  It generates the training data for
the AI surrogate and serves as the physics fallback in the hybrid
workflow.
"""

from .grid import CurvilinearGrid, StretchedAxis, make_charlotte_grid
from .bathymetry import BathymetryConfig, synth_estuary_bathymetry, wet_mask
from .tides import GULF_CONSTITUENTS, TidalConstituent, TidalForcing
from .sigma import SigmaLayers, VerticalStructure
from .swe import GRAVITY, SWEConfig, ShallowWaterSolver, ShallowWaterState
from .model import OceanConfig, RomsLikeModel, Snapshot
from .diagnostics import VolumeBudget, cfl_number, energy, volume_budget
from .harmonics import HarmonicFit, compare_constituents, fit_constituents
from .storm import ParametricCyclone, SteadyWind, StormForcedSolver

__all__ = [
    "CurvilinearGrid",
    "StretchedAxis",
    "make_charlotte_grid",
    "BathymetryConfig",
    "synth_estuary_bathymetry",
    "wet_mask",
    "TidalConstituent",
    "TidalForcing",
    "GULF_CONSTITUENTS",
    "SigmaLayers",
    "VerticalStructure",
    "SWEConfig",
    "ShallowWaterSolver",
    "ShallowWaterState",
    "GRAVITY",
    "OceanConfig",
    "RomsLikeModel",
    "Snapshot",
    "VolumeBudget",
    "volume_budget",
    "energy",
    "cfl_number",
    "HarmonicFit",
    "fit_constituents",
    "compare_constituents",
    "SteadyWind",
    "ParametricCyclone",
    "StormForcedSolver",
]
