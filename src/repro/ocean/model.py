"""ROMS-like coastal circulation driver.

:class:`RomsLikeModel` composes the grid, bathymetry, tidal forcing,
barotropic solver and sigma-layer diagnostics into the interface every
other part of the library consumes:

* ``simulate`` — run from an initial state and collect snapshots of
  (u, v, w, ζ) every ``snapshot_interval`` seconds, exactly like the
  decade-long half-hourly ROMS archive the paper trains on;
* ``forecast`` — the fallback path of the hybrid workflow: advance a
  given initial condition by one episode and return its snapshots;
* boundary-extraction helpers used to assemble surrogate inputs.

Snapshot field layout matches the surrogate convention:
``u3, v3, w3`` are ``(T, H, W, D)`` (depth last, surface layer last)
and ``zeta`` is ``(T, H, W)``, with H = ny (north) and W = nx (east).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from .bathymetry import BathymetryConfig, synth_estuary_bathymetry
from .grid import make_charlotte_grid
from .sigma import SigmaLayers, VerticalStructure
from .swe import ShallowWaterSolver, ShallowWaterState, SWEConfig
from .tides import TidalForcing

__all__ = ["OceanConfig", "Snapshot", "RomsLikeModel"]


@dataclass(frozen=True)
class OceanConfig:
    """Configuration of the full ocean substrate."""

    nx: int = 60
    ny: int = 90
    nz: int = 6
    length_x: float = 60_000.0
    length_y: float = 90_000.0
    bathymetry: BathymetryConfig = field(default_factory=BathymetryConfig)
    swe: SWEConfig = field(default_factory=SWEConfig)
    snapshot_interval: float = 1800.0      # 30 minutes, as in the paper

    @staticmethod
    def paper_mesh() -> "OceanConfig":
        """Full 898×598×12 mesh (for perf modelling, not CPU training)."""
        return OceanConfig(nx=598, ny=898, nz=12,
                           length_x=80_000.0, length_y=110_000.0)


@dataclass
class Snapshot:
    """One output snapshot of the four learned variables."""

    t: float
    u3: np.ndarray      # (H, W, D)
    v3: np.ndarray      # (H, W, D)
    w3: np.ndarray      # (H, W, D)
    zeta: np.ndarray    # (H, W)


class RomsLikeModel:
    """Tidal circulation model of a Charlotte-Harbor-like estuary."""

    def __init__(self, config: Optional[OceanConfig] = None,
                 forcing: Optional[TidalForcing] = None):
        cfg = config or OceanConfig()
        self.config = cfg
        self.grid = make_charlotte_grid(cfg.nx, cfg.ny,
                                        cfg.length_x, cfg.length_y)
        self.depth = synth_estuary_bathymetry(self.grid, cfg.bathymetry)
        self.forcing = forcing if forcing is not None else TidalForcing()
        self.solver = ShallowWaterSolver(self.grid, self.depth,
                                         self.forcing, cfg.swe)
        self.layers = SigmaLayers(cfg.nz)
        self.vertical = VerticalStructure(self.grid, self.layers)

    # ------------------------------------------------------------------
    # state → snapshot
    # ------------------------------------------------------------------
    def diagnose(self, state: ShallowWaterState) -> Snapshot:
        """Build the (u, v, w, ζ) snapshot from a barotropic state."""
        H = self.solver.total_depth(state.zeta)
        uc = self.grid.u_to_center(state.u)
        vc = self.grid.v_to_center(state.v)
        u3, v3 = self.vertical.horizontal(uc, vc, H)
        w3 = self.vertical.vertical(u3, v3, H)
        wet = self.solver.wet
        for f3 in (u3, v3, w3):
            f3[:, ~wet] = 0.0
        zeta = np.where(wet, state.zeta, 0.0)
        # (nz, ny, nx) → (ny, nx, nz) with surface layer last
        to_hwd = lambda a: np.ascontiguousarray(np.moveaxis(a, 0, -1))
        return Snapshot(state.t, to_hwd(u3), to_hwd(v3), to_hwd(w3), zeta)

    # ------------------------------------------------------------------
    # simulation drivers
    # ------------------------------------------------------------------
    def spinup(self, duration: float = 2 * 86400.0,
               t0: float = 0.0) -> ShallowWaterState:
        """Integrate from rest until the tide is fully developed."""
        state = self.solver.initial_state(t0)
        return self.solver.run(state, duration)

    def simulate(self, state: ShallowWaterState, n_snapshots: int,
                 snapshot_interval: Optional[float] = None
                 ) -> Tuple[List[Snapshot], ShallowWaterState]:
        """Collect ``n_snapshots`` snapshots starting *after* ``state.t``.

        Returns the snapshots and the final prognostic state (so callers
        can continue the run without re-spinning up).
        """
        dt_out = snapshot_interval or self.config.snapshot_interval
        snaps: List[Snapshot] = []
        for _ in range(n_snapshots):
            state = self.solver.run(state, dt_out)
            snaps.append(self.diagnose(state))
        return snaps, state

    def simulate_with_states(self, state: ShallowWaterState,
                             n_snapshots: int, every: int,
                             snapshot_interval: Optional[float] = None
                             ) -> Tuple[List[Snapshot],
                                        List[ShallowWaterState],
                                        ShallowWaterState]:
        """Like :meth:`simulate`, also recording the prognostic state at
        every ``every``-th snapshot boundary (episode starts) — the
        fallback entry points of the hybrid workflow."""
        dt_out = snapshot_interval or self.config.snapshot_interval
        snaps: List[Snapshot] = []
        states: List[ShallowWaterState] = []
        for k in range(n_snapshots):
            if k % every == 0:
                states.append(state.copy())
            state = self.solver.run(state, dt_out)
            snaps.append(self.diagnose(state))
        return snaps, states, state

    def forecast(self, initial: ShallowWaterState, n_snapshots: int,
                 snapshot_interval: Optional[float] = None) -> List[Snapshot]:
        """ROMS-style episode forecast (the hybrid workflow's fallback)."""
        snaps, _ = self.simulate(initial.copy(), n_snapshots,
                                 snapshot_interval)
        return snaps

    # ------------------------------------------------------------------
    # helpers for surrogate input assembly
    # ------------------------------------------------------------------
    @staticmethod
    def boundary_rim(field2d: np.ndarray, width: int = 1) -> np.ndarray:
        """Zero the interior, keep a rim of ``width`` cells (per 2-D slice).

        Works for ``(H, W)`` and ``(H, W, D)`` arrays (rim applies to the
        horizontal plane).
        """
        out = np.zeros_like(field2d)
        w = width
        out[:w, ...] = field2d[:w, ...]
        out[-w:, ...] = field2d[-w:, ...]
        out[:, :w, ...] = field2d[:, :w, ...]
        out[:, -w:, ...] = field2d[:, -w:, ...]
        return out

    def stack_fields(self, snaps: List[Snapshot]
                     ) -> Tuple[np.ndarray, np.ndarray]:
        """Stack snapshots into ``(3, H, W, D, T)`` and ``(1, H, W, T)``."""
        u = np.stack([s.u3 for s in snaps], axis=-1)
        v = np.stack([s.v3 for s in snaps], axis=-1)
        w = np.stack([s.w3 for s in snaps], axis=-1)
        z = np.stack([s.zeta for s in snaps], axis=-1)
        return np.stack([u, v, w], axis=0), z[None]
