"""Sigma-coordinate vertical structure.

ROMS uses terrain-following sigma layers: the lowest follows the bed,
the highest follows the free surface (paper §II-B).  The barotropic
solver evolves depth-averaged transport; this module diagnoses the
3-D fields the surrogate learns:

* horizontal velocities ``u(σ), v(σ)`` from a logarithmic bottom
  boundary-layer profile scaled to preserve the depth average, and
* vertical velocity ``w`` by integrating the continuity equation
  upward from the bed (w = 0 at the bottom).

The resulting ``w`` is orders of magnitude smaller than u, v — the same
scale separation the paper reports (Table III: MAE(w) ≈ 1e-4 m/s while
MAE(u, v) ≈ 2e-2 m/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .grid import CurvilinearGrid

__all__ = ["SigmaLayers", "VerticalStructure"]


@dataclass(frozen=True)
class SigmaLayers:
    """Uniform sigma discretisation with ``nz`` layers in σ ∈ [−1, 0]."""

    nz: int

    @property
    def interfaces(self) -> np.ndarray:
        """σ at layer interfaces, bottom (−1) to surface (0); nz+1 values."""
        return np.linspace(-1.0, 0.0, self.nz + 1)

    @property
    def midpoints(self) -> np.ndarray:
        s = self.interfaces
        return 0.5 * (s[:-1] + s[1:])

    @property
    def thickness_fractions(self) -> np.ndarray:
        s = self.interfaces
        return s[1:] - s[:-1]

    def layer_heights_above_bed(self, total_depth: np.ndarray) -> np.ndarray:
        """Midpoint heights above the bed, shape (nz, ny, nx)."""
        frac = 1.0 + self.midpoints  # 0..1 from bed to surface
        return frac[:, None, None] * total_depth[None, :, :]


class VerticalStructure:
    """Diagnose 3-D (u, v, w) from the barotropic solution.

    Parameters
    ----------
    grid: horizontal grid (for divergence metrics).
    layers: sigma discretisation.
    roughness: bed roughness length z₀ [m] of the log profile.
    """

    def __init__(self, grid: CurvilinearGrid, layers: SigmaLayers,
                 roughness: float = 0.005):
        self.grid = grid
        self.layers = layers
        self.z0 = roughness

    # ------------------------------------------------------------------
    def profile(self, total_depth: np.ndarray) -> np.ndarray:
        """Normalised log-layer profile p(σ), shape (nz, ny, nx).

        p is ∝ ln(1 + z/z₀) at layer midpoints and is normalised so the
        thickness-weighted vertical mean is exactly 1, preserving the
        depth-averaged velocity.
        """
        z = self.layers.layer_heights_above_bed(total_depth)
        p = np.log1p(z / self.z0)
        frac = self.layers.thickness_fractions[:, None, None]
        mean = (p * frac).sum(axis=0)
        return p / np.maximum(mean, 1e-12)[None, :, :]

    def horizontal(self, ubar_c: np.ndarray, vbar_c: np.ndarray,
                   total_depth: np.ndarray
                   ) -> Tuple[np.ndarray, np.ndarray]:
        """3-D (u, v) at cell centres from depth-averaged velocities.

        Parameters
        ----------
        ubar_c, vbar_c: (ny, nx) depth-averaged velocities at centres.
        total_depth: (ny, nx) h + ζ.

        Returns
        -------
        (u3, v3): each (nz, ny, nx), bottom layer first.
        """
        p = self.profile(total_depth)
        return ubar_c[None] * p, vbar_c[None] * p

    def vertical(self, u3: np.ndarray, v3: np.ndarray,
                 total_depth: np.ndarray) -> np.ndarray:
        """Diagnose w at layer midpoints by integrating continuity.

        ∂w/∂z = −(∂u/∂x + ∂v/∂y) with w(bed) = 0.  Horizontal derivatives
        use centred differences on the non-uniform grid; the layer
        thickness is ``total_depth · Δσ``.

        Returns (nz, ny, nx).
        """
        grid = self.grid
        nz = self.layers.nz
        dzf = self.layers.thickness_fractions
        dz = dzf[:, None, None] * total_depth[None]

        div = np.empty_like(u3)
        for k in range(nz):
            div[k] = self._divergence_centers(u3[k], v3[k])

        w_iface = np.zeros((nz + 1,) + total_depth.shape)
        for k in range(nz):
            w_iface[k + 1] = w_iface[k] - div[k] * dz[k]
        return 0.5 * (w_iface[:-1] + w_iface[1:])

    # ------------------------------------------------------------------
    def _divergence_centers(self, uc: np.ndarray, vc: np.ndarray) -> np.ndarray:
        """∂u/∂x + ∂v/∂y at centres via centred differences."""
        grid = self.grid
        dx = grid.dx
        dy = grid.dy
        dudx = np.zeros_like(uc)
        dudx[:, 1:-1] = (uc[:, 2:] - uc[:, :-2]) / (dx[:, 1:-1] * 2.0)
        dvdy = np.zeros_like(vc)
        dvdy[1:-1, :] = (vc[2:, :] - vc[:-2, :]) / (dy[1:-1, :] * 2.0)
        return dudx + dvdy
