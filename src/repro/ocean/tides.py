"""Astronomic tidal forcing.

Coastal circulation in the paper's study is driven by tidal propagation
(§I: "we focus on characterizing the water level and the flow
associated with tidal propagation").  The open (west) boundary of the
domain is forced with a sum of harmonic constituents; the Gulf-coast
constituent set (M2, S2, N2, K1, O1) with realistic periods and
Charlotte-Harbor-scale amplitudes produces the mixed, mainly-semidiurnal
signal visible in the paper's Fig. 6 time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["TidalConstituent", "TidalForcing", "GULF_CONSTITUENTS"]

HOUR = 3600.0


@dataclass(frozen=True)
class TidalConstituent:
    """A single harmonic: ζ(t) = amplitude · cos(2πt/period − phase)."""

    name: str
    period_s: float        # seconds
    amplitude_m: float     # metres
    phase_rad: float = 0.0

    def elevation(self, t: np.ndarray) -> np.ndarray:
        omega = 2.0 * np.pi / self.period_s
        return self.amplitude_m * np.cos(omega * np.asarray(t) - self.phase_rad)


#: Principal constituents at the Gulf coast of Florida (amplitudes are
#: representative of the Charlotte Harbor entrance; phases arbitrary but
#: fixed so every dataset is reproducible).
GULF_CONSTITUENTS: Tuple[TidalConstituent, ...] = (
    TidalConstituent("M2", 12.4206 * HOUR, 0.26, 0.00),
    TidalConstituent("S2", 12.0000 * HOUR, 0.10, 0.45),
    TidalConstituent("N2", 12.6583 * HOUR, 0.06, 1.10),
    TidalConstituent("K1", 23.9345 * HOUR, 0.16, 2.10),
    TidalConstituent("O1", 25.8193 * HOUR, 0.15, 3.00),
)


class TidalForcing:
    """Boundary water-level forcing with alongshore phase propagation.

    Parameters
    ----------
    constituents: harmonic set.
    alongshore_delay_s_per_m: the tide arrives slightly later toward the
        north, modelling alongshore propagation of the Gulf tide; a value
        of ``1/20`` s/m corresponds to a ~20 m/s shallow-water wave.
    """

    def __init__(self,
                 constituents: Sequence[TidalConstituent] = GULF_CONSTITUENTS,
                 alongshore_delay_s_per_m: float = 0.05):
        self.constituents = tuple(constituents)
        self.delay = alongshore_delay_s_per_m

    def elevation(self, t: float, y: np.ndarray | float = 0.0) -> np.ndarray:
        """Boundary elevation at time ``t`` [s] and alongshore coord ``y`` [m]."""
        tt = np.asarray(t, dtype=np.float64) - self.delay * np.asarray(y)
        out = np.zeros_like(tt, dtype=np.float64)
        for c in self.constituents:
            out = out + c.elevation(tt)
        return out

    def series(self, times: np.ndarray, y: float = 0.0) -> np.ndarray:
        """Elevation time series at a fixed alongshore position."""
        return self.elevation(np.asarray(times), y)

    @property
    def max_amplitude(self) -> float:
        return sum(c.amplitude_m for c in self.constituents)
