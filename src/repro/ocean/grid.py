"""Non-uniform structured grid with Arakawa-C staggering.

ROMS discretises the coastal domain on a structured, *non-uniform*
horizontal grid (finer near river channels and inlets) with an
Arakawa-C staggering: free surface ζ at cell centres (rho points),
u on the east/west cell faces, v on the north/south faces
(paper §II-B).  This module provides the grid geometry, metric terms,
and the centre↔face interpolation/difference operators every other
ocean module builds on.

Index convention: arrays are ``(ny, nx)``; ``u`` lives on vertical
faces with shape ``(ny, nx+1)``; ``v`` on horizontal faces with shape
``(ny+1, nx)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

__all__ = ["StretchedAxis", "CurvilinearGrid", "make_charlotte_grid"]


def _stretched_spacing(n: int, length: float, focus: Tuple[float, ...],
                       strength: float, width: float) -> np.ndarray:
    """Non-uniform spacings refined near each ``focus`` fraction.

    Spacing is inversely proportional to a sum-of-Gaussians density; the
    result sums exactly to ``length``.
    """
    frac = (np.arange(n) + 0.5) / n
    density = np.ones(n)
    for f in focus:
        density += strength * np.exp(-((frac - f) / width) ** 2)
    dx = (1.0 / density)
    dx *= length / dx.sum()
    return dx


@dataclass
class StretchedAxis:
    """One horizontal axis with optionally non-uniform spacing."""

    n: int
    length: float
    focus: Tuple[float, ...] = ()
    strength: float = 2.0
    width: float = 0.08
    spacing: np.ndarray = field(init=False)
    centers: np.ndarray = field(init=False)
    faces: np.ndarray = field(init=False)

    def __post_init__(self):
        if self.focus:
            self.spacing = _stretched_spacing(
                self.n, self.length, self.focus, self.strength, self.width)
        else:
            self.spacing = np.full(self.n, self.length / self.n)
        self.faces = np.concatenate([[0.0], np.cumsum(self.spacing)])
        self.centers = 0.5 * (self.faces[:-1] + self.faces[1:])

    @classmethod
    def from_spacing(cls, spacing: np.ndarray,
                     origin: float = 0.0) -> "StretchedAxis":
        """Build an axis from explicit spacings (e.g. a slab of a parent
        axis in domain decomposition), with coordinates offset by
        ``origin`` so geographic positions are preserved."""
        obj = cls.__new__(cls)
        obj.n = len(spacing)
        obj.length = float(np.sum(spacing))
        obj.focus = ()
        obj.strength = 0.0
        obj.width = 0.0
        obj.spacing = np.asarray(spacing, dtype=np.float64)
        obj.faces = origin + np.concatenate([[0.0], np.cumsum(obj.spacing)])
        obj.centers = 0.5 * (obj.faces[:-1] + obj.faces[1:])
        return obj

    @property
    def face_spacing(self) -> np.ndarray:
        """Distance between adjacent cell centres (n+1 entries; edges
        use the half-cell distance)."""
        inner = self.centers[1:] - self.centers[:-1]
        first = self.centers[0] - self.faces[0]
        last = self.faces[-1] - self.centers[-1]
        return np.concatenate([[first], inner, [last]])


class CurvilinearGrid:
    """Horizontal Arakawa-C grid with metric terms.

    Parameters
    ----------
    x_axis, y_axis: stretched axes for the east (x / i) and north
        (y / j) directions.
    lat0, lon0: geographic anchor of the south-west corner, used only
        to report cell locations in degrees (Fig. 5/6 reproduction).
    """

    EARTH_M_PER_DEG_LAT = 111_320.0

    def __init__(self, x_axis: StretchedAxis, y_axis: StretchedAxis,
                 lat0: float = 26.2, lon0: float = -82.6):
        self.x_axis = x_axis
        self.y_axis = y_axis
        self.nx = x_axis.n
        self.ny = y_axis.n
        self.lat0 = lat0
        self.lon0 = lon0
        # metric arrays, broadcast to 2-D
        self.dx = np.broadcast_to(x_axis.spacing[None, :], (self.ny, self.nx)).copy()
        self.dy = np.broadcast_to(y_axis.spacing[:, None], (self.ny, self.nx)).copy()
        self.area = self.dx * self.dy
        # centre-to-centre spacings at faces (for pressure gradients)
        self.dxu = np.broadcast_to(
            x_axis.face_spacing[None, :], (self.ny, self.nx + 1)).copy()
        self.dyv = np.broadcast_to(
            y_axis.face_spacing[:, None], (self.ny + 1, self.nx)).copy()

    # ------------------------------------------------------------------
    # geographic mapping
    # ------------------------------------------------------------------
    def lonlat(self, j: int, i: int) -> Tuple[float, float]:
        """(lon, lat) of cell centre (j, i)."""
        lat = self.lat0 + self.y_axis.centers[j] / self.EARTH_M_PER_DEG_LAT
        m_per_deg_lon = self.EARTH_M_PER_DEG_LAT * np.cos(np.deg2rad(lat))
        lon = self.lon0 + self.x_axis.centers[i] / m_per_deg_lon
        return float(lon), float(lat)

    def nearest_cell(self, lon: float, lat: float) -> Tuple[int, int]:
        """(j, i) of the cell centre nearest a geographic point."""
        y = (lat - self.lat0) * self.EARTH_M_PER_DEG_LAT
        m_per_deg_lon = self.EARTH_M_PER_DEG_LAT * np.cos(np.deg2rad(lat))
        x = (lon - self.lon0) * m_per_deg_lon
        j = int(np.argmin(np.abs(self.y_axis.centers - y)))
        i = int(np.argmin(np.abs(self.x_axis.centers - x)))
        return j, i

    # ------------------------------------------------------------------
    # staggering operators (pure NumPy, allocation-light)
    # ------------------------------------------------------------------
    def center_to_u(self, c: np.ndarray) -> np.ndarray:
        """Average centre field to u faces; edge faces copy the edge cell.

        Accepts arbitrary leading axes: ``c`` is (…, ny, nx) and the
        result (…, ny, nx+1), so batched (N, T, H, W) fields vectorise.
        """
        out = np.empty(c.shape[:-1] + (self.nx + 1,), dtype=c.dtype)
        out[..., 1:-1] = 0.5 * (c[..., :-1] + c[..., 1:])
        out[..., 0] = c[..., 0]
        out[..., -1] = c[..., -1]
        return out

    def center_to_v(self, c: np.ndarray) -> np.ndarray:
        out = np.empty(c.shape[:-2] + (self.ny + 1, self.nx), dtype=c.dtype)
        out[..., 1:-1, :] = 0.5 * (c[..., :-1, :] + c[..., 1:, :])
        out[..., 0, :] = c[..., 0, :]
        out[..., -1, :] = c[..., -1, :]
        return out

    def u_to_center(self, u: np.ndarray) -> np.ndarray:
        return 0.5 * (u[..., :-1] + u[..., 1:])

    def v_to_center(self, v: np.ndarray) -> np.ndarray:
        return 0.5 * (v[..., :-1, :] + v[..., 1:, :])

    def ddx_at_u(self, c: np.ndarray) -> np.ndarray:
        """∂c/∂x evaluated on interior u faces (edges zero)."""
        out = np.zeros((self.ny, self.nx + 1), dtype=c.dtype)
        out[:, 1:-1] = (c[:, 1:] - c[:, :-1]) / self.dxu[:, 1:-1]
        return out

    def ddy_at_v(self, c: np.ndarray) -> np.ndarray:
        out = np.zeros((self.ny + 1, self.nx), dtype=c.dtype)
        out[1:-1, :] = (c[1:, :] - c[:-1, :]) / self.dyv[1:-1, :]
        return out

    def flux_divergence(self, fx: np.ndarray, fy: np.ndarray) -> np.ndarray:
        """Divergence of face fluxes, per unit area, at cell centres.

        ``fx``: (…, ny, nx+1) volume flux through u faces [m³/s per
        metre of face — i.e. already multiplied by face depth];
        similarly ``fy``.  Leading axes (batch, time) broadcast.
        Returns (…, ny, nx) in units of fx / m.
        """
        div_x = (fx[..., 1:] * self.y_axis.spacing[:, None]
                 - fx[..., :-1] * self.y_axis.spacing[:, None])
        div_y = (fy[..., 1:, :] * self.x_axis.spacing[None, :]
                 - fy[..., :-1, :] * self.x_axis.spacing[None, :])
        return (div_x + div_y) / self.area

    @property
    def min_spacing(self) -> float:
        return float(min(self.x_axis.spacing.min(), self.y_axis.spacing.min()))


def make_charlotte_grid(nx: int = 60, ny: int = 90,
                        length_x: float = 60_000.0,
                        length_y: float = 90_000.0) -> CurvilinearGrid:
    """Default grid: a Charlotte-Harbor-like domain.

    ~60 km (east) × 90 km (north) with refinement near the two inlet
    corridors (x fractions 0.35, 0.65) and the river mouth (y fraction
    0.85), mirroring the paper's "higher resolution near river channels
    and inlets".
    """
    x_axis = StretchedAxis(nx, length_x, focus=(0.35, 0.65))
    y_axis = StretchedAxis(ny, length_y, focus=(0.85,))
    return CurvilinearGrid(x_axis, y_axis)
