"""Conservation and stability diagnostics for the ocean substrate.

These are the solver-side counterparts of the AI-side physics
verification (paper §III-E): volume budget closure, kinetic/potential
energy, and CFL monitoring.  The test suite uses them as invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .swe import GRAVITY, ShallowWaterSolver, ShallowWaterState

__all__ = ["VolumeBudget", "volume_budget", "energy", "cfl_number"]


@dataclass(frozen=True)
class VolumeBudget:
    """One-step volume budget: ΔV vs. net boundary + river inflow."""

    volume_change: float       # m³ over the step
    boundary_flux: float       # m³ through open boundaries (positive in)
    river_inflow: float        # m³ from river discharge
    residual: float            # ΔV − inflows (≈0 ⇒ conservative)

    @property
    def relative_residual(self) -> float:
        scale = max(abs(self.volume_change), abs(self.boundary_flux), 1.0)
        return abs(self.residual) / scale


def volume_budget(solver: ShallowWaterSolver, before: ShallowWaterState,
                  after: ShallowWaterState) -> VolumeBudget:
    """Close the volume budget across one (or more) solver steps.

    The continuity update is forward Euler in the fluxes, so for a
    *single* solver step the budget closes to round-off using the
    ``before`` fluxes, provided sponge nudging is off (nudging is an
    explicit non-conservative relaxation).
    """
    grid = solver.grid
    dt = after.t - before.t

    dv = solver.total_volume(after) - solver.total_volume(before)

    fx0, _ = solver.volume_fluxes(before)
    # open west faces: positive u flows *into* the domain
    face_len = grid.y_axis.spacing
    boundary = float((fx0[:, 0] * face_len).sum()) * dt

    river = solver.river_cell_discharge * int(solver.river_mask.sum()) * dt

    return VolumeBudget(dv, boundary, river, dv - boundary - river)


def energy(solver: ShallowWaterSolver, state: ShallowWaterState
           ) -> Dict[str, float]:
    """Domain-integrated kinetic and available potential energy [J/ρ]."""
    grid = solver.grid
    H = solver.total_depth(state.zeta)
    uc = grid.u_to_center(state.u)
    vc = grid.v_to_center(state.v)
    wet = solver.wet
    ke = 0.5 * (H * (uc ** 2 + vc ** 2) * grid.area)[wet].sum()
    pe = 0.5 * GRAVITY * (state.zeta ** 2 * grid.area)[wet].sum()
    return {"kinetic": float(ke), "potential": float(pe),
            "total": float(ke + pe)}


def cfl_number(solver: ShallowWaterSolver, state: ShallowWaterState) -> float:
    """Instantaneous gravity-wave CFL of the current state."""
    H = solver.total_depth(state.zeta)
    c = np.sqrt(GRAVITY * H[solver.wet].max())
    return float(c * solver.dt * np.sqrt(2.0) / solver.grid.min_spacing)
