"""Split-explicit barotropic shallow-water stepper on the Arakawa-C grid.

This is the computational core of the ROMS-like substrate: the
free-surface / depth-averaged momentum system that carries the tidal
wave through the estuary.  ROMS integrates this "barotropic mode" with
a short explicit time step inside each baroclinic step (paper §II-B);
here the barotropic mode *is* the model, and the baroclinic vertical
structure is diagnosed by :mod:`repro.ocean.sigma`.

Discretisation
--------------
* forward-backward scheme: ζ is advanced first from the flux divergence,
  then momentum uses the *new* ζ — neutrally stable for gravity waves at
  CFL < 1 and the standard choice for split-explicit barotropic modes.
* quadratic bottom friction, Coriolis, lateral viscosity, optional
  first-order upwind momentum advection.
* open west boundary with a nudging (sponge) zone clamped to the tidal
  elevation; solid walls elsewhere; optional river inflow at the
  northern river mouth.

The stepper conserves water volume exactly (up to float64 round-off)
in a closed basin — the invariant the paper's verification module
checks on the AI side, and one of our property tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .grid import CurvilinearGrid
from .tides import TidalForcing

__all__ = ["SWEConfig", "ShallowWaterState", "ShallowWaterSolver"]

GRAVITY = 9.81
OMEGA_EARTH = 7.2921e-5


@dataclass(frozen=True)
class SWEConfig:
    """Physical and numerical parameters of the barotropic solver."""

    drag_coefficient: float = 2.5e-3      # quadratic bottom drag C_d
    viscosity: float = 12.0               # lateral eddy viscosity [m²/s]
    latitude_deg: float = 26.6            # for the Coriolis parameter
    cfl: float = 0.45                     # fraction of the gravity-wave limit
    min_total_depth: float = 0.05         # wetting floor [m]
    sponge_cells: int = 4                 # nudging-zone width at the open bdry
    sponge_strength: float = 0.5          # max nudging weight per step
    advection: bool = False               # upwind momentum advection
    river_discharge: float = 120.0        # [m³/s] into the northern river arm

    @property
    def coriolis_f(self) -> float:
        return 2.0 * OMEGA_EARTH * np.sin(np.deg2rad(self.latitude_deg))


@dataclass
class ShallowWaterState:
    """Prognostic fields at one instant."""

    t: float
    zeta: np.ndarray          # (ny, nx) free surface [m]
    u: np.ndarray             # (ny, nx+1) east velocity at u faces [m/s]
    v: np.ndarray             # (ny+1, nx) north velocity at v faces [m/s]

    def copy(self) -> "ShallowWaterState":
        return ShallowWaterState(self.t, self.zeta.copy(),
                                 self.u.copy(), self.v.copy())


class ShallowWaterSolver:
    """Barotropic tide solver over a masked, non-uniform C-grid.

    Parameters
    ----------
    grid: horizontal grid and metrics.
    depth: (ny, nx) bathymetry, positive down; ≤0 marks land.
    forcing: tidal boundary forcing applied along the open west edge.
    config: physics/numerics configuration.
    """

    def __init__(self, grid: CurvilinearGrid, depth: np.ndarray,
                 forcing: Optional[TidalForcing] = None,
                 config: SWEConfig = SWEConfig()):
        if depth.shape != (grid.ny, grid.nx):
            raise ValueError(
                f"depth shape {depth.shape} != grid ({grid.ny}, {grid.nx})")
        self.grid = grid
        self.depth = np.asarray(depth, dtype=np.float64)
        self.forcing = forcing
        self.cfg = config

        self.wet = self.depth > 0.0
        self._build_face_masks()
        self._build_sponge()
        self.dt = self.stable_dt()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _build_face_masks(self) -> None:
        ny, nx = self.grid.ny, self.grid.nx
        wet = self.wet
        self.u_open = np.zeros((ny, nx + 1), dtype=bool)
        self.u_open[:, 1:-1] = wet[:, :-1] & wet[:, 1:]
        # west edge is the open ocean boundary wherever the edge cell is
        # wet; with no tidal forcing the basin is fully closed
        if self.forcing is not None:
            self.u_open[:, 0] = wet[:, 0]
        self.v_open = np.zeros((ny + 1, nx), dtype=bool)
        self.v_open[1:-1, :] = wet[:-1, :] & wet[1:, :]
        # outflow condition applies on the open west faces of the domain
        self.west_outflow = self.u_open[:, 0].copy()
        # river inflow cells on the northern edge (wet cells of the river
        # arm at j = ny−1); discharge is split evenly per cell and stored
        # per cell so subdomain solvers inherit the global share
        self.river_mask = np.zeros((ny, nx), dtype=bool)
        xf = self.grid.x_axis.centers / self.grid.x_axis.length
        self.river_mask[-1, :] = wet[-1, :] & (xf > 0.5)
        n_river = int(self.river_mask.sum())
        self.river_cell_discharge = (
            self.cfg.river_discharge / n_river if n_river else 0.0)

    def _build_sponge(self) -> None:
        """Nudging weights decaying inland from the west boundary."""
        ny, nx = self.grid.ny, self.grid.nx
        w = np.zeros((ny, nx), dtype=np.float64)
        n = self.cfg.sponge_cells
        for i in range(min(n, nx)):
            w[:, i] = self.cfg.sponge_strength * (1.0 - i / n) ** 2
        w[~self.wet] = 0.0
        self.sponge = w

    def stable_dt(self) -> float:
        """CFL-limited step for the fastest gravity wave on the grid."""
        hmax = float(self.depth[self.wet].max())
        c = np.sqrt(GRAVITY * hmax)
        return self.cfg.cfl * self.grid.min_spacing / (c * np.sqrt(2.0))

    def initial_state(self, t0: float = 0.0) -> ShallowWaterState:
        ny, nx = self.grid.ny, self.grid.nx
        zeta = np.zeros((ny, nx))
        if self.forcing is not None:
            # start from the equilibrium boundary level to avoid a shock
            zeta[self.wet] = float(
                np.mean(self.forcing.elevation(t0, self.grid.y_axis.centers)))
        return ShallowWaterState(
            t0, zeta, np.zeros((ny, nx + 1)), np.zeros((ny + 1, nx)))

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def total_depth(self, zeta: np.ndarray) -> np.ndarray:
        H = self.depth + zeta
        return np.maximum(H, self.cfg.min_total_depth)

    def _face_depths(self, zeta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        H = self.total_depth(zeta)
        Hu = self.grid.center_to_u(H)
        Hv = self.grid.center_to_v(H)
        return Hu, Hv

    def volume_fluxes(self, state: ShallowWaterState
                      ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-face transports (H·u, H·v), zeroed at closed faces."""
        Hu, Hv = self._face_depths(state.zeta)
        fx = Hu * state.u
        fy = Hv * state.v
        fx[~self.u_open] = 0.0
        fy[~self.v_open] = 0.0
        return fx, fy

    def step(self, state: ShallowWaterState) -> ShallowWaterState:
        """Advance one barotropic time step (forward-backward)."""
        g = GRAVITY
        f = self.cfg.coriolis_f
        dt = self.dt
        grid = self.grid
        cfg = self.cfg

        # ---- continuity: ζⁿ⁺¹ = ζⁿ − Δt ∇·(H u) -------------------------
        fx, fy = self.volume_fluxes(state)
        div = grid.flux_divergence(fx, fy)
        zeta_new = state.zeta - dt * div
        # river discharge enters through the northern edge
        if self.river_cell_discharge > 0.0:
            zeta_new[self.river_mask] += (
                dt * self.river_cell_discharge / grid.area[self.river_mask])
        zeta_new[~self.wet] = 0.0

        # ---- open-boundary nudging to the tide --------------------------
        if self.forcing is not None:
            tide = self.forcing.elevation(
                state.t + dt, self.grid.y_axis.centers)[:, None]
            zeta_new = zeta_new + self.sponge * (tide - zeta_new)

        # ---- momentum (uses ζⁿ⁺¹: the "backward" part) -------------------
        Hu, Hv = self._face_depths(zeta_new)
        dzdx = grid.ddx_at_u(zeta_new)
        dzdy = grid.ddy_at_v(zeta_new)

        v_at_u = self._v_at_u(state.v)
        u_at_v = self._u_at_v(state.u)

        speed_u = np.sqrt(state.u ** 2 + v_at_u ** 2)
        speed_v = np.sqrt(state.v ** 2 + u_at_v ** 2)

        du = (-g * dzdx + f * v_at_u
              - cfg.drag_coefficient * speed_u * state.u / Hu
              + cfg.viscosity * self._laplacian_u(state.u))
        dv = (-g * dzdy - f * u_at_v
              - cfg.drag_coefficient * speed_v * state.v / Hv
              + cfg.viscosity * self._laplacian_v(state.v))

        if cfg.advection:
            du -= self._upwind_advect_u(state.u, v_at_u)
            dv -= self._upwind_advect_v(state.v, u_at_v)

        u_new = state.u + dt * du
        v_new = state.v + dt * dv
        u_new[~self.u_open] = 0.0
        v_new[~self.v_open] = 0.0
        # zero-gradient outflow at the open west faces keeps the boundary
        # transparent to the nudged surface signal
        u_new[:, 0] = np.where(self.west_outflow, u_new[:, 1], u_new[:, 0])

        return ShallowWaterState(state.t + dt, zeta_new, u_new, v_new)

    # ------------------------------------------------------------------
    # stencil helpers
    # ------------------------------------------------------------------
    def _v_at_u(self, v: np.ndarray) -> np.ndarray:
        ny, nx = self.grid.ny, self.grid.nx
        vc = 0.5 * (v[:-1, :] + v[1:, :])                  # v at centres
        out = np.zeros((ny, nx + 1))
        out[:, 1:-1] = 0.5 * (vc[:, :-1] + vc[:, 1:])
        out[:, 0] = vc[:, 0]
        out[:, -1] = vc[:, -1]
        return out

    def _u_at_v(self, u: np.ndarray) -> np.ndarray:
        ny, nx = self.grid.ny, self.grid.nx
        uc = 0.5 * (u[:, :-1] + u[:, 1:])                  # u at centres
        out = np.zeros((ny + 1, nx))
        out[1:-1, :] = 0.5 * (uc[:-1, :] + uc[1:, :])
        out[0, :] = uc[0, :]
        out[-1, :] = uc[-1, :]
        return out

    def _laplacian_u(self, u: np.ndarray) -> np.ndarray:
        out = np.zeros_like(u)
        dx = self.grid.dxu
        out[:, 1:-1] += (u[:, 2:] - 2 * u[:, 1:-1] + u[:, :-2]) / dx[:, 1:-1] ** 2
        dyc = np.broadcast_to(self.grid.y_axis.spacing[:, None], u.shape)
        out[1:-1, :] += (u[2:, :] - 2 * u[1:-1, :] + u[:-2, :]) / dyc[1:-1, :] ** 2
        out[~self.u_open] = 0.0
        return out

    def _laplacian_v(self, v: np.ndarray) -> np.ndarray:
        out = np.zeros_like(v)
        dxc = np.broadcast_to(self.grid.x_axis.spacing[None, :], v.shape)
        out[:, 1:-1] += (v[:, 2:] - 2 * v[:, 1:-1] + v[:, :-2]) / dxc[:, 1:-1] ** 2
        out[1:-1, :] += (v[2:, :] - 2 * v[1:-1, :] + v[:-2, :]) / \
            self.grid.dyv[1:-1, :] ** 2
        out[~self.v_open] = 0.0
        return out

    def _upwind_advect_u(self, u: np.ndarray, v_at_u: np.ndarray) -> np.ndarray:
        """First-order upwind u·∇u at u faces."""
        adv = np.zeros_like(u)
        dx = self.grid.dxu
        dudx_m = np.zeros_like(u)
        dudx_p = np.zeros_like(u)
        dudx_m[:, 1:] = (u[:, 1:] - u[:, :-1]) / dx[:, 1:]
        dudx_p[:, :-1] = (u[:, 1:] - u[:, :-1]) / dx[:, 1:]
        adv += np.where(u > 0, u * dudx_m, u * dudx_p)
        dyc = np.broadcast_to(self.grid.y_axis.spacing[:, None], u.shape)
        dudy_m = np.zeros_like(u)
        dudy_p = np.zeros_like(u)
        dudy_m[1:, :] = (u[1:, :] - u[:-1, :]) / dyc[1:, :]
        dudy_p[:-1, :] = (u[1:, :] - u[:-1, :]) / dyc[1:, :]
        adv += np.where(v_at_u > 0, v_at_u * dudy_m, v_at_u * dudy_p)
        adv[~self.u_open] = 0.0
        return adv

    def _upwind_advect_v(self, v: np.ndarray, u_at_v: np.ndarray) -> np.ndarray:
        adv = np.zeros_like(v)
        dy = self.grid.dyv
        dvdy_m = np.zeros_like(v)
        dvdy_p = np.zeros_like(v)
        dvdy_m[1:, :] = (v[1:, :] - v[:-1, :]) / dy[1:, :]
        dvdy_p[:-1, :] = (v[1:, :] - v[:-1, :]) / dy[1:, :]
        adv += np.where(v > 0, v * dvdy_m, v * dvdy_p)
        dxc = np.broadcast_to(self.grid.x_axis.spacing[None, :], v.shape)
        dvdx_m = np.zeros_like(v)
        dvdx_p = np.zeros_like(v)
        dvdx_m[:, 1:] = (v[:, 1:] - v[:, :-1]) / dxc[:, 1:]
        dvdx_p[:, :-1] = (v[:, 1:] - v[:, :-1]) / dxc[:, 1:]
        adv += np.where(u_at_v > 0, u_at_v * dvdx_m, u_at_v * dvdx_p)
        adv[~self.v_open] = 0.0
        return adv

    # ------------------------------------------------------------------
    # integration helpers
    # ------------------------------------------------------------------
    def run(self, state: ShallowWaterState, duration: float
            ) -> ShallowWaterState:
        """Advance ``state`` by ``duration`` seconds (whole steps)."""
        n = max(1, int(round(duration / self.dt)))
        for _ in range(n):
            state = self.step(state)
        return state

    def total_volume(self, state: ShallowWaterState) -> float:
        """Water volume above the bed over wet cells [m³]."""
        H = self.total_depth(state.zeta)
        return float((H * self.grid.area)[self.wet].sum())
