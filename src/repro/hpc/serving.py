"""Serving capacity model: micro-batch latency → sustainable load.

On every backend the engine's batch wall-clock is well described by an
affine law ``seconds(B) ≈ a + b·B`` — a fixed dispatch cost ``a``
(layer/kernel launch overhead, Python orchestration) plus a marginal
per-request cost ``b``.  Micro-batching amortises ``a`` over the batch;
throughput ``B / (a + b·B)`` therefore rises with occupancy and
saturates at ``1/b`` requests per second.  Fitting (``a``, ``b``) from
a scheduler's :class:`~repro.serve.scheduler.BatchRecord` log yields
the capacity numbers an operator actually plans with: the saturation
QPS of one engine replica and the smallest ``max_batch`` that reaches a
target fraction of it within a latency budget.

A replica pool (:class:`~repro.serve.pool.EngineWorkerPool`) adds the
second axis: :class:`PoolCapacityModel` extends the per-replica law to
pool-level saturation throughput vs replica count through a serial
contention fraction (Amdahl form), fitted from observed
(worker count, achieved QPS) sweeps such as the ones
``benchmarks/bench_serving.py --workers N`` produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = ["ServingCapacityModel", "PoolCapacityModel"]


@dataclass(frozen=True)
class ServingCapacityModel:
    """Affine micro-batch cost model ``seconds(B) = a + b·B``.

    Attributes
    ----------
    dispatch_seconds: fixed per-forward cost ``a`` [s].
    per_request_seconds: marginal cost ``b`` of one more request in
        the batch [s].
    """

    dispatch_seconds: float
    per_request_seconds: float

    # -- construction ---------------------------------------------------
    @staticmethod
    def fit(batch_sizes: Sequence[int], batch_seconds: Sequence[float]
            ) -> "ServingCapacityModel":
        """Least-squares fit over observed (size, wall-clock) pairs.

        With a single distinct batch size the affine split is not
        identifiable; the cost is then attributed entirely to the
        marginal term (``a = 0``), which makes the model conservative
        (it under-states the batching win instead of inventing one).
        """
        sizes = np.asarray(batch_sizes, dtype=np.float64)
        secs = np.asarray(batch_seconds, dtype=np.float64)
        if sizes.size == 0 or sizes.size != secs.size:
            raise ValueError("need equal, non-zero observation counts")
        if np.unique(sizes).size < 2:
            return ServingCapacityModel(0.0, float(np.mean(secs / sizes)))
        b, a = np.polyfit(sizes, secs, 1)
        return ServingCapacityModel(max(float(a), 0.0),
                                    max(float(b), 1e-12))

    @staticmethod
    def from_batch_log(records) -> "ServingCapacityModel":
        """Fit from a scheduler's ``metrics.batches`` log.

        Failed batches are excluded — an engine call that raised did
        not observe a service time, and an immediate raise would drag
        the fit toward zero.
        """
        ok = [r for r in records if not getattr(r, "failed", False)]
        return ServingCapacityModel.fit([r.size for r in ok],
                                        [r.seconds for r in ok])

    # -- predictions ----------------------------------------------------
    def batch_seconds(self, batch: int) -> float:
        """Modelled wall-clock of one micro-batch of ``batch`` requests."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.dispatch_seconds + self.per_request_seconds * batch

    def throughput(self, batch: int) -> float:
        """Requests/second at steady occupancy ``batch``."""
        return batch / self.batch_seconds(batch)

    @property
    def saturation_throughput(self) -> float:
        """Occupancy → ∞ limit: ``1 / b`` requests per second."""
        return 1.0 / self.per_request_seconds

    def optimal_batch(self, latency_slo_seconds: float,
                      max_batch: int = 1024) -> int:
        """Largest occupancy whose batch wall-clock fits the SLO.

        Returns at least 1 (a lone request cannot shrink below the
        dispatch cost) and at most ``max_batch``.
        """
        if latency_slo_seconds <= 0:
            raise ValueError("latency SLO must be positive")
        budget = latency_slo_seconds - self.dispatch_seconds
        best = int(budget / self.per_request_seconds)
        return max(1, min(best, int(max_batch)))


@dataclass(frozen=True)
class PoolCapacityModel:
    """Pool saturation throughput vs replica count (Amdahl form).

    With ``X₁`` one replica's saturated QPS, a pool of ``n`` replicas
    delivers

        ``X(n) = n · X₁ / (1 + σ · (n − 1))``

    where ``σ ∈ [0, 1]`` is the *serial contention fraction* — the
    share of per-request work the replicas cannot actually overlap
    (routing/admission under the pool lock, the Python interpreter's
    GIL between NumPy kernels, memory-bandwidth saturation).  ``σ = 0``
    is perfect sharding (linear in ``n``); ``σ = 1`` means replicas buy
    nothing (a single-core host).  The asymptote is ``X₁/σ``.

    ``X₁`` must be the throughput one replica *actually achieves*
    under the deployed flush policy — ``B/(a + b·B)`` at the real
    occupancy, not the occupancy→∞ limit ``1/b`` — otherwise the
    finite-batch shortfall masquerades as contention.  :meth:`fit`
    therefore prefers a measured single-replica observation as the
    baseline and only falls back to the affine law's asymptote.

    Attributes
    ----------
    replica: the fitted per-replica affine law (kept for reference
        and as the ``X₁`` fallback).
    contention: the serial fraction ``σ``.
    single_replica_qps: measured ``X₁`` baseline; ``None`` falls back
        to ``replica.saturation_throughput``.
    """

    replica: ServingCapacityModel
    contention: float = 0.0
    single_replica_qps: Optional[float] = None

    def __post_init__(self):
        if not 0.0 <= self.contention <= 1.0:
            raise ValueError("contention must be in [0, 1]")
        if self.single_replica_qps is not None \
                and self.single_replica_qps <= 0:
            raise ValueError("single_replica_qps must be positive")

    @property
    def baseline_throughput(self) -> float:
        """``X₁``: the single-replica saturated QPS the model scales."""
        if self.single_replica_qps is not None:
            return self.single_replica_qps
        return self.replica.saturation_throughput

    # -- construction ---------------------------------------------------
    @staticmethod
    def fit(replica: ServingCapacityModel, worker_counts: Sequence[int],
            achieved_qps: Sequence[float]) -> "PoolCapacityModel":
        """Fit ``σ`` from observed (worker count, saturated QPS) pairs.

        The ``X₁`` baseline is the mean of the single-replica
        observations when any are present (the consistent,
        same-flush-policy baseline), else the affine law's asymptote.
        Each multi-replica observation then gives a direct estimate
        ``σ = (n·X₁/X − 1)/(n − 1)``; the fit averages them, clipped
        into [0, 1] (measurement noise can push a lone estimate
        slightly outside).  With no multi-replica observation the fit
        is conservative (``σ = 1``: promise no pool win that was never
        measured).
        """
        ns = np.asarray(worker_counts, dtype=np.float64)
        xs = np.asarray(achieved_qps, dtype=np.float64)
        if ns.size == 0 or ns.size != xs.size:
            raise ValueError("need equal, non-zero observation counts")
        base = (ns == 1) & (xs > 0)
        measured_x1 = float(np.mean(xs[base])) if base.any() else None
        x1 = measured_x1 if measured_x1 is not None \
            else replica.saturation_throughput
        mask = (ns > 1) & (xs > 0)
        if not mask.any():
            return PoolCapacityModel(replica, 1.0, measured_x1)
        sigma = (ns[mask] * x1 / xs[mask] - 1.0) / (ns[mask] - 1.0)
        return PoolCapacityModel(
            replica, float(np.clip(np.mean(sigma), 0.0, 1.0)), measured_x1)

    # -- predictions ----------------------------------------------------
    def saturation_throughput(self, workers: int) -> float:
        """Modelled saturated QPS of a pool of ``workers`` replicas."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        x1 = self.baseline_throughput
        return workers * x1 / (1.0 + self.contention * (workers - 1))

    def speedup(self, workers: int) -> float:
        """Pool-over-single-replica saturation throughput ratio."""
        return self.saturation_throughput(workers) \
            / self.saturation_throughput(1)

    @property
    def asymptotic_throughput(self) -> float:
        """``workers → ∞`` limit: ``X₁/σ`` (infinite when ``σ = 0``)."""
        x1 = self.baseline_throughput
        return float("inf") if self.contention == 0 else x1 / self.contention

    def optimal_workers(self, target_qps: float,
                        max_workers: int = 256) -> Optional[int]:
        """Smallest replica count whose modelled saturation throughput
        reaches ``target_qps``, or ``None`` if no pool of up to
        ``max_workers`` can (the target exceeds the contention
        asymptote or the cap)."""
        if target_qps <= 0:
            raise ValueError("target throughput must be positive")
        for n in range(1, int(max_workers) + 1):
            if self.saturation_throughput(n) >= target_qps:
                return n
        return None

    def required_workers(self, demand_qps: float,
                         target_utilization: float = 0.7,
                         max_workers: int = 256) -> Optional[int]:
        """Smallest replica count serving ``demand_qps`` at or below
        ``target_utilization`` of modelled saturation — the autoscaling
        form of :meth:`optimal_workers` (running replicas *at*
        saturation leaves no headroom for queueing transients, so the
        live target is demand over a utilisation fraction, not demand
        itself).  ``None`` when no pool of up to ``max_workers``
        reaches it."""
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError("target_utilization must be in (0, 1]")
        return self.optimal_workers(demand_qps / target_utilization,
                                    max_workers=max_workers)
