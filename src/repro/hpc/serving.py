"""Serving capacity model: micro-batch latency → sustainable load.

On every backend the engine's batch wall-clock is well described by an
affine law ``seconds(B) ≈ a + b·B`` — a fixed dispatch cost ``a``
(layer/kernel launch overhead, Python orchestration) plus a marginal
per-request cost ``b``.  Micro-batching amortises ``a`` over the batch;
throughput ``B / (a + b·B)`` therefore rises with occupancy and
saturates at ``1/b`` requests per second.  Fitting (``a``, ``b``) from
a scheduler's :class:`~repro.serve.scheduler.BatchRecord` log yields
the capacity numbers an operator actually plans with: the saturation
QPS of one engine replica and the smallest ``max_batch`` that reaches a
target fraction of it within a latency budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ServingCapacityModel"]


@dataclass(frozen=True)
class ServingCapacityModel:
    """Affine micro-batch cost model ``seconds(B) = a + b·B``.

    Attributes
    ----------
    dispatch_seconds: fixed per-forward cost ``a`` [s].
    per_request_seconds: marginal cost ``b`` of one more request in
        the batch [s].
    """

    dispatch_seconds: float
    per_request_seconds: float

    # -- construction ---------------------------------------------------
    @staticmethod
    def fit(batch_sizes: Sequence[int], batch_seconds: Sequence[float]
            ) -> "ServingCapacityModel":
        """Least-squares fit over observed (size, wall-clock) pairs.

        With a single distinct batch size the affine split is not
        identifiable; the cost is then attributed entirely to the
        marginal term (``a = 0``), which makes the model conservative
        (it under-states the batching win instead of inventing one).
        """
        sizes = np.asarray(batch_sizes, dtype=np.float64)
        secs = np.asarray(batch_seconds, dtype=np.float64)
        if sizes.size == 0 or sizes.size != secs.size:
            raise ValueError("need equal, non-zero observation counts")
        if np.unique(sizes).size < 2:
            return ServingCapacityModel(0.0, float(np.mean(secs / sizes)))
        b, a = np.polyfit(sizes, secs, 1)
        return ServingCapacityModel(max(float(a), 0.0),
                                    max(float(b), 1e-12))

    @staticmethod
    def from_batch_log(records) -> "ServingCapacityModel":
        """Fit from a scheduler's ``metrics.batches`` log.

        Failed batches are excluded — an engine call that raised did
        not observe a service time, and an immediate raise would drag
        the fit toward zero.
        """
        ok = [r for r in records if not getattr(r, "failed", False)]
        return ServingCapacityModel.fit([r.size for r in ok],
                                        [r.seconds for r in ok])

    # -- predictions ----------------------------------------------------
    def batch_seconds(self, batch: int) -> float:
        """Modelled wall-clock of one micro-batch of ``batch`` requests."""
        if batch < 1:
            raise ValueError("batch must be >= 1")
        return self.dispatch_seconds + self.per_request_seconds * batch

    def throughput(self, batch: int) -> float:
        """Requests/second at steady occupancy ``batch``."""
        return batch / self.batch_seconds(batch)

    @property
    def saturation_throughput(self) -> float:
        """Occupancy → ∞ limit: ``1 / b`` requests per second."""
        return 1.0 / self.per_request_seconds

    def optimal_batch(self, latency_slo_seconds: float,
                      max_batch: int = 1024) -> int:
        """Largest occupancy whose batch wall-clock fits the SLO.

        Returns at least 1 (a lone request cannot shrink below the
        dispatch cost) and at most ``max_batch``.
        """
        if latency_slo_seconds <= 0:
            raise ValueError("latency SLO must be positive")
        budget = latency_slo_seconds - self.dispatch_seconds
        best = int(budget / self.per_request_seconds)
        return max(1, min(best, int(max_batch)))
