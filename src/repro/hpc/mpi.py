"""Simulated MPI: block domain decomposition with halo exchange.

ROMS scales by dividing the horizontal domain into rectangular zones,
one per MPI rank, and exchanging boundary (halo) cells every step
(paper §II-B).  This module reproduces that structure in-process:

* :class:`SimComm` — a byte-accounting communicator (messages between
  ranks are array copies; volumes and counts are what the perf models
  consume);
* :class:`BlockDecomposition` — balanced 2-D partition with halo slabs;
* :class:`DecomposedShallowWater` — the *actual* barotropic solver run
  as P subdomain solvers with per-step halo exchange.  Its results are
  bit-identical to the global solver (verified by the test suite),
  which is the correctness contract of MPI ROMS.

The sequential execution of ranks makes this a *semantic* simulation of
MPI: identical data movement and identical results, with communication
cost tracked analytically rather than incurred.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..ocean.grid import CurvilinearGrid, StretchedAxis
from ..ocean.swe import ShallowWaterSolver, ShallowWaterState

__all__ = ["SimComm", "BlockDecomposition", "DecomposedShallowWater",
           "halo_exchange_bytes"]

FLOAT_BYTES = 8


class SimComm:
    """Byte-accounting in-process communicator."""

    def __init__(self, n_ranks: int):
        if n_ranks < 1:
            raise ValueError("need at least one rank")
        self.n_ranks = n_ranks
        self.bytes_sent = 0
        self.n_messages = 0
        self.per_pair: Dict[Tuple[int, int], int] = {}

    def sendrecv(self, src: int, dst: int, payload: np.ndarray) -> np.ndarray:
        """Move ``payload`` from src to dst (copy), recording volume."""
        if not (0 <= src < self.n_ranks and 0 <= dst < self.n_ranks):
            raise ValueError(f"rank out of range: {src} → {dst}")
        self.bytes_sent += payload.nbytes
        self.n_messages += 1
        key = (src, dst)
        self.per_pair[key] = self.per_pair.get(key, 0) + payload.nbytes
        return payload.copy()

    def allreduce_sum(self, values: List[float]) -> float:
        """Tree allreduce; accounts 2·(P−1) scalar messages."""
        self.n_messages += 2 * (self.n_ranks - 1)
        self.bytes_sent += 2 * (self.n_ranks - 1) * FLOAT_BYTES
        return float(np.sum(values))


@dataclass(frozen=True)
class BlockRange:
    """Owned index range of one rank along one axis."""

    start: int
    stop: int

    @property
    def size(self) -> int:
        return self.stop - self.start


class BlockDecomposition:
    """Balanced 2-D block partition of an (ny, nx) domain.

    Parameters
    ----------
    ny, nx: global cell counts.
    pr, pc: process-grid rows × columns (pr·pc ranks).
    halo: halo width in cells (2 covers every stencil in the solver).
    """

    def __init__(self, ny: int, nx: int, pr: int, pc: int, halo: int = 2):
        if pr < 1 or pc < 1:
            raise ValueError("process grid must be at least 1×1")
        if pr > ny or pc > nx:
            raise ValueError(
                f"process grid ({pr}×{pc}) exceeds domain ({ny}×{nx})")
        self.ny, self.nx = ny, nx
        self.pr, self.pc = pr, pc
        self.halo = halo
        self.rows = self._split(ny, pr)
        self.cols = self._split(nx, pc)

    @staticmethod
    def _split(n: int, p: int) -> List[BlockRange]:
        base, extra = divmod(n, p)
        ranges = []
        start = 0
        for k in range(p):
            size = base + (1 if k < extra else 0)
            ranges.append(BlockRange(start, start + size))
            start += size
        return ranges

    @property
    def n_ranks(self) -> int:
        return self.pr * self.pc

    def rank_block(self, rank: int) -> Tuple[BlockRange, BlockRange]:
        r, c = divmod(rank, self.pc)
        return self.rows[r], self.cols[c]

    def halo_slab(self, rank: int) -> Tuple[slice, slice]:
        """Global (row, col) slices of the rank's slab including halo,
        clipped at domain edges."""
        rb, cb = self.rank_block(rank)
        h = self.halo
        return (slice(max(rb.start - h, 0), min(rb.stop + h, self.ny)),
                slice(max(cb.start - h, 0), min(cb.stop + h, self.nx)))

    def interior_in_slab(self, rank: int) -> Tuple[slice, slice]:
        """Local slices of the owned interior within the halo slab."""
        rb, cb = self.rank_block(rank)
        rs, cs = self.halo_slab(rank)
        return (slice(rb.start - rs.start, rb.stop - rs.start),
                slice(cb.start - cs.start, cb.stop - cs.start))

    # ------------------------------------------------------------------
    def halo_bytes_per_exchange(self, fields: int = 3,
                                dtype_bytes: int = FLOAT_BYTES) -> int:
        """Total bytes moved in one full halo exchange of ``fields``
        cell-centred fields (EW then NS, corners carried by NS)."""
        total = 0
        h = self.halo
        for rank in range(self.n_ranks):
            rb, cb = self.rank_block(rank)
            r, c = divmod(rank, self.pc)
            # east/west messages: rows × halo columns
            if c > 0:
                total += rb.size * h
            if c < self.pc - 1:
                total += rb.size * h
            # north/south messages include the column halos
            width = cb.size + (h if c > 0 else 0) + (h if c < self.pc - 1 else 0)
            if r > 0:
                total += width * h
            if r < self.pr - 1:
                total += width * h
        return total * fields * dtype_bytes


def halo_exchange_bytes(ny: int, nx: int, pr: int, pc: int,
                        halo: int = 2, fields: int = 3,
                        dtype_bytes: int = FLOAT_BYTES) -> int:
    """Convenience wrapper used by the ROMS performance model."""
    return BlockDecomposition(ny, nx, pr, pc, halo).halo_bytes_per_exchange(
        fields, dtype_bytes)


class _SubdomainSolver(ShallowWaterSolver):
    """The barotropic solver restricted to one rank's halo slab.

    Masks, sponge, river share and time step are inherited from the
    parent (global) solver so subdomain physics is exactly the global
    physics; domain-edge behaviours (open west boundary, river row) are
    active only where the slab actually touches the global edge.
    """

    def __init__(self, parent: ShallowWaterSolver, rows: slice, cols: slice):
        grid = parent.grid
        sub_grid = CurvilinearGrid(
            StretchedAxis.from_spacing(grid.x_axis.spacing[cols],
                                       origin=grid.x_axis.faces[cols.start]),
            StretchedAxis.from_spacing(grid.y_axis.spacing[rows],
                                       origin=grid.y_axis.faces[rows.start]),
            lat0=grid.lat0, lon0=grid.lon0,
        )
        super().__init__(sub_grid, parent.depth[rows, cols],
                         parent.forcing, parent.cfg)
        # inherit global decisions: masks, sponge, river share, dt
        urange = slice(cols.start, cols.stop + 1)
        vrange = slice(rows.start, rows.stop + 1)
        self.u_open = parent.u_open[rows, urange].copy()
        self.v_open = parent.v_open[vrange, cols].copy()
        self.sponge = parent.sponge[rows, cols].copy()
        self.river_mask = parent.river_mask[rows, cols].copy()
        self.river_cell_discharge = parent.river_cell_discharge
        self.wet = parent.wet[rows, cols].copy()
        self.dt = parent.dt
        if cols.start == 0:
            self.west_outflow = parent.west_outflow.copy()[rows]
        else:
            self.west_outflow = np.zeros(self.grid.ny, dtype=bool)
            self.sponge[:] = parent.sponge[rows, cols]  # interior sponge ≡ 0


class DecomposedShallowWater:
    """Run the barotropic solver as P halo-exchanging subdomains.

    The API mirrors :class:`ShallowWaterSolver.step` on *global* states:
    each step scatters halo slabs (the simulated exchange), steps every
    subdomain, and gathers owned interiors.  Executed sequentially, the
    result is bit-identical to the global solver.
    """

    def __init__(self, solver: ShallowWaterSolver, pr: int, pc: int,
                 halo: int = 2):
        self.parent = solver
        self.decomp = BlockDecomposition(solver.grid.ny, solver.grid.nx,
                                         pr, pc, halo)
        self.comm = SimComm(self.decomp.n_ranks)
        self.subsolvers: List[_SubdomainSolver] = []
        for rank in range(self.decomp.n_ranks):
            rows, cols = self.decomp.halo_slab(rank)
            self.subsolvers.append(_SubdomainSolver(solver, rows, cols))

    @property
    def dt(self) -> float:
        return self.parent.dt

    def step(self, state: ShallowWaterState) -> ShallowWaterState:
        """One decomposed step on a global state."""
        ny, nx = self.parent.grid.ny, self.parent.grid.nx
        zeta_new = np.zeros((ny, nx))
        u_new = np.zeros((ny, nx + 1))
        v_new = np.zeros((ny + 1, nx))

        for rank, sub in enumerate(self.subsolvers):
            rows, cols = self.decomp.halo_slab(rank)
            urange = slice(cols.start, cols.stop + 1)
            vrange = slice(rows.start, rows.stop + 1)
            local = ShallowWaterState(
                state.t,
                state.zeta[rows, cols].copy(),
                state.u[rows, urange].copy(),
                state.v[vrange, cols].copy(),
            )
            stepped = sub.step(local)

            ir, ic = self.decomp.interior_in_slab(rank)
            rb, cb = self.decomp.rank_block(rank)
            zeta_new[rb.start:rb.stop, cb.start:cb.stop] = \
                stepped.zeta[ir, ic]
            u_new[rb.start:rb.stop, cb.start:cb.stop + 1] = \
                stepped.u[ir, slice(ic.start, ic.stop + 1)]
            v_new[rb.start:rb.stop + 1, cb.start:cb.stop] = \
                stepped.v[slice(ir.start, ir.stop + 1), ic]

        # account the halo traffic this step would have required
        self.comm.bytes_sent += self.decomp.halo_bytes_per_exchange(fields=3)
        self.comm.n_messages += 4 * self.decomp.n_ranks  # ≤4 neighbours each

        return ShallowWaterState(state.t + self.dt, zeta_new, u_new, v_new)

    def run(self, state: ShallowWaterState, duration: float
            ) -> ShallowWaterState:
        n = max(1, int(round(duration / self.dt)))
        for _ in range(n):
            state = self.step(state)
        return state
