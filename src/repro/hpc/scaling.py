"""Multi-GPU data-parallel weak scaling (paper Fig. 10).

Data-parallel training replicates the surrogate on every GPU and
allreduces gradients each iteration.  Weak scaling keeps the per-GPU
batch fixed (1 without activation checkpointing, 2 with), so ideal
throughput grows linearly with GPU count; the deviation comes from the
ring-allreduce term, which crosses from NVLink (intra-node, ≤8 GPUs on
a DGX node) to InfiniBand (multi-node, 16/32 GPUs) exactly as in the
paper's 1/2/4/8 vs 16/32 GPU experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..swin.model import CoastalSurrogate, SurrogateConfig
from .cluster import ClusterSpec, DGX_A100_CLUSTER
from .pipeline import PipelineConfig, PipelineParams, TrainingPipelineModel

__all__ = ["ScalingModel", "ring_allreduce_seconds", "PAPER_GPU_COUNTS"]

PAPER_GPU_COUNTS = (1, 2, 4, 8, 16, 32)


def ring_allreduce_seconds(nbytes: int, n_workers: int, bandwidth: float,
                           latency: float) -> float:
    """Ring allreduce cost: 2·(n−1)/n chunks over the slowest link."""
    if n_workers <= 1:
        return 0.0
    steps = 2 * (n_workers - 1)
    chunk = nbytes / n_workers
    return steps * (chunk / bandwidth + latency)


@dataclass
class ScalingModel:
    """Weak-scaling throughput of surrogate training.

    Parameters
    ----------
    pipeline: single-GPU pipeline model (compute + staging terms).
    cluster: interconnect topology.
    grad_bytes: gradient payload per allreduce (fp32 parameter count ×4;
        derived from the surrogate configuration by default).
    """

    pipeline: TrainingPipelineModel = field(
        default_factory=lambda: TrainingPipelineModel(PipelineParams()))
    cluster: ClusterSpec = field(default_factory=lambda: DGX_A100_CLUSTER)
    grad_bytes: int = 3_390_000 * 4       # paper: 3.39 M parameters

    @staticmethod
    def for_surrogate(cfg: SurrogateConfig, **kw) -> "ScalingModel":
        model = CoastalSurrogate(cfg)
        return ScalingModel(grad_bytes=model.num_parameters() * 4, **kw)

    # ------------------------------------------------------------------
    def allreduce_seconds(self, n_gpus: int) -> float:
        """Gradient allreduce across ``n_gpus`` (NVLink within a node,
        hierarchical over InfiniBand across nodes)."""
        node = self.cluster.node
        nodes, per_node = self.cluster.gpus(n_gpus)
        intra = ring_allreduce_seconds(
            self.grad_bytes, per_node, node.nvlink_bandwidth,
            node.nvlink_latency)
        if nodes == 1:
            return intra
        inter = ring_allreduce_seconds(
            self.grad_bytes, nodes, self.cluster.inter_node_bandwidth,
            self.cluster.ib_latency)
        # hierarchical: reduce within node, ring across nodes, broadcast
        return intra + inter + intra

    def iteration_seconds(self, n_gpus: int,
                          checkpointing: bool = True) -> float:
        config = PipelineConfig(
            name="scaling", activation_checkpointing=checkpointing)
        return self.pipeline.iteration_seconds(config) \
            + self.allreduce_seconds(n_gpus)

    def throughput(self, n_gpus: int, checkpointing: bool = True) -> float:
        """Global training throughput (instances/s, Fig. 10 metric)."""
        batch = 2 if checkpointing else 1
        return n_gpus * batch / self.iteration_seconds(n_gpus, checkpointing)

    def figure10(self, gpu_counts: Sequence[int] = PAPER_GPU_COUNTS
                 ) -> List[Dict[str, float]]:
        """Both Fig. 10 curves."""
        return [
            {
                "gpus": n,
                "with_ckpt": self.throughput(n, True),
                "without_ckpt": self.throughput(n, False),
                "allreduce_ms": self.allreduce_seconds(n) * 1e3,
            }
            for n in gpu_counts
        ]
