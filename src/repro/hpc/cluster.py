"""Hardware platform specifications (paper §IV-A and Table II).

The paper's platform is an HPC cluster of NVIDIA DGX nodes: 8× A100
(80 GB HBM2e at ~2 TB/s) per node, 2× AMD EPYC 7742, NVLink intra-node,
10× HDR InfiniBand inter-node, and local NVMe SSD measured at 750 MB/s
for training-sample reads.  These constants parameterise every
performance model in :mod:`repro.hpc`; all are published figures from
the paper (Table II) or vendor datasheets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = ["GpuSpec", "NodeSpec", "ClusterSpec", "DGX_A100_CLUSTER"]

GB = 1024 ** 3
TB = 1024 ** 4


@dataclass(frozen=True)
class GpuSpec:
    """One accelerator."""

    name: str = "A100-80GB"
    memory_bytes: int = 80 * GB
    hbm_bandwidth: float = 2.0e12            # 2 TB/s (paper Table II)
    fp16_tflops: float = 312.0               # A100 dense FP16 tensor core
    fp32_tflops: float = 19.5


@dataclass(frozen=True)
class NodeSpec:
    """One DGX node."""

    gpus_per_node: int = 8
    gpu: GpuSpec = field(default_factory=GpuSpec)
    cpu_cores: int = 128                     # 2× EPYC 7742
    cpu_memory_bytes: int = 2010 * GB
    ssd_read_bandwidth: float = 750e6        # 750 MB/s (paper Table II)
    ram_bandwidth: float = 200e9             # DDR4-8ch ballpark
    pcie_h2d_pinned: float = 25e9            # pinned pages, PCIe gen4 x16
    pcie_h2d_pageable: float = 6.5e9         # extra staging copy + sync
    nvlink_bandwidth: float = 300e9          # per-GPU aggregate NVLink
    nvlink_latency: float = 2e-6


@dataclass(frozen=True)
class ClusterSpec:
    """Multi-node cluster with InfiniBand interconnect."""

    n_nodes: int = 140                       # paper: 140 DGX-2 nodes
    node: NodeSpec = field(default_factory=NodeSpec)
    ib_bandwidth: float = 25e9               # one HDR200 link per direction
    ib_links_per_node: int = 10              # paper: 10× HDR
    ib_latency: float = 5e-6

    def gpus(self, n: int) -> Tuple[int, int]:
        """(nodes used, gpus per node used) for an n-GPU job, packing
        nodes first like the paper's 1/2/4/8 on one node, 16/32 on 2/4."""
        per = self.node.gpus_per_node
        if n <= per:
            return 1, n
        if n % per:
            raise ValueError(f"{n} GPUs does not pack into {per}-GPU nodes")
        return n // per, per

    @property
    def inter_node_bandwidth(self) -> float:
        return self.ib_bandwidth * self.ib_links_per_node


#: The paper's evaluation platform.
DGX_A100_CLUSTER = ClusterSpec()
