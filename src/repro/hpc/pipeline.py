"""Training-pipeline performance model (paper §III-D, Table II, Fig. 9).

Models one training iteration as overlapping stages:

* **load** — SSD→RAM staging of the batch; with prefetch workers the
  load is pipelined behind compute (and partially served by the OS page
  cache); without prefetch it serialises onto the critical path;
* **h2d** — RAM→HBM copy; pinned memory enables the higher PCIe rate
  *and* overlap with compute (non-blocking copies); pageable memory is
  slower and blocking;
* **compute** — forward+backward; activation checkpointing adds a
  recompute fraction but halves per-sample activation memory, enabling
  batch 2 per GPU instead of 1 (paper §III-D);
* **update** — optimiser step plus per-iteration fixed overhead.

Default constants come from the paper's own platform numbers (Table II
bandwidths, 4 GB/sample, 5.5 s SSD load) with the compute time
calibrated so the full-optimisation configuration reproduces the
paper's measured 1.36 instances/s; the three ablations then *fall out
of the model* rather than being fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..swin.model import SurrogateConfig
from .cluster import NodeSpec
from .memory import sample_nbytes

__all__ = ["PipelineParams", "PipelineConfig", "TrainingPipelineModel",
           "FIG9_CONFIGS"]

GB = 1024 ** 3


@dataclass(frozen=True)
class PipelineParams:
    """Calibratable constants of the pipeline model."""

    sample_bytes: int = 4 * GB        # Table II: 4 GB per sample staged
    compute_per_instance: float = 0.142   # s, fwd+bwd without recompute
    recompute_fraction: float = 0.33      # extra fwd for SW-MSA ckpt
    fixed_overhead: float = 1.093         # s/iter: optimiser, launch, sync
    prefetch_workers: int = 6             # paper: 6 worker processes
    cache_hit_fraction: float = 0.74      # OS page cache on re-reads
    node: NodeSpec = field(default_factory=NodeSpec)

    # ``compute_per_instance`` and ``fixed_overhead`` are jointly
    # calibrated on the two *compute-side* bars of the paper's Fig. 9
    # (1.36 inst/s with all optimisations, 0.81 without checkpointing);
    # the I/O-side bars (w/o pin memory, w/o prefetch) are then model
    # *predictions* from the platform bandwidths above.

    def effective_load_seconds(self, nbytes: int) -> float:
        """SSD/page-cache blend for one sample staged to RAM."""
        ssd = nbytes / self.node.ssd_read_bandwidth
        ram = nbytes / self.node.ram_bandwidth
        return (1.0 - self.cache_hit_fraction) * ssd \
            + self.cache_hit_fraction * ram

    @staticmethod
    def from_surrogate(cfg: SurrogateConfig,
                       measured_compute: Optional[float] = None,
                       **kw) -> "PipelineParams":
        """Derive sample size from an actual surrogate configuration.

        ``measured_compute`` (seconds per instance, e.g. from
        :class:`repro.train.Trainer` statistics) replaces the calibrated
        paper-scale constant for self-measured ablations.
        """
        base = PipelineParams(sample_bytes=sample_nbytes(cfg), **kw)
        if measured_compute is not None:
            base = replace(base, compute_per_instance=measured_compute)
        return base


@dataclass(frozen=True)
class PipelineConfig:
    """Which optimisations are active (one bar of Fig. 9)."""

    name: str
    activation_checkpointing: bool = True
    pin_memory: bool = True
    prefetch: bool = True

    @property
    def batch_size(self) -> int:
        # checkpointing halves activation memory → batch 2 fits in 80 GB
        return 2 if self.activation_checkpointing else 1


#: The four bars of the paper's Fig. 9.
FIG9_CONFIGS = (
    PipelineConfig("Our method"),
    PipelineConfig("w/o activation ckpt", activation_checkpointing=False),
    PipelineConfig("w/o pin memory", pin_memory=False),
    PipelineConfig("w/o prefetch", prefetch=False),
)


class TrainingPipelineModel:
    """Analytic throughput of one GPU's training pipeline."""

    def __init__(self, params: PipelineParams = PipelineParams()):
        self.params = params

    # ------------------------------------------------------------------
    def stage_times(self, config: PipelineConfig) -> Dict[str, float]:
        """Per-iteration stage durations (before overlap)."""
        p = self.params
        B = config.batch_size
        compute = p.compute_per_instance
        if config.activation_checkpointing:
            compute *= 1.0 + p.recompute_fraction
        compute *= B

        load = p.effective_load_seconds(p.sample_bytes) * B
        h2d_bw = (p.node.pcie_h2d_pinned if config.pin_memory
                  else p.node.pcie_h2d_pageable)
        h2d = p.sample_bytes * B / h2d_bw
        return {
            "load": load,
            "h2d": h2d,
            "compute": compute,
            "fixed": p.fixed_overhead,
        }

    def iteration_seconds(self, config: PipelineConfig) -> float:
        """Critical-path length of one iteration after overlap rules."""
        s = self.stage_times(config)
        p = self.params
        visible = s["fixed"] + s["compute"]
        if config.prefetch:
            # workers pipeline the load; it appears only if it outruns
            # compute even when spread across the worker pool
            hidden_load = s["load"] / max(1, p.prefetch_workers)
            visible = max(visible, hidden_load)
        else:
            visible += s["load"]
        if config.pin_memory:
            # non-blocking copy overlaps with compute: only the excess
            # beyond the compute window is exposed
            visible += max(0.0, s["h2d"] - s["compute"])
        else:
            visible += s["h2d"]          # blocking staging copy
        return visible

    def throughput(self, config: PipelineConfig) -> float:
        """Training throughput in instances per second (Fig. 9 metric)."""
        return config.batch_size / self.iteration_seconds(config)

    def figure9(self) -> List[Dict[str, float]]:
        """All four Fig. 9 bars for the current parameters."""
        return [
            {"name": c.name, "throughput": self.throughput(c),
             "batch_size": c.batch_size,
             "iteration_seconds": self.iteration_seconds(c)}
            for c in FIG9_CONFIGS
        ]
