"""HPC platform simulation and performance models.

Reproduces the systems side of the paper on commodity hardware:
cluster specifications, the memory-tier model behind Table II, the
simulated-MPI domain decomposition of the solver (verified bit-exact),
the training-pipeline ablation model (Fig. 9), the ROMS cost model
(Table I, Fig. 8), and the multi-GPU weak-scaling model (Fig. 10).
:mod:`repro.hpc.fabric` carries the serving tier across hosts: a
length-prefixed descriptor-frame transport with a deterministic
SimComm-backed fabric and a real TCP-loopback fabric (see
:mod:`repro.serve.hostpool`).
"""

from .cluster import ClusterSpec, DGX_A100_CLUSTER, GpuSpec, NodeSpec
from .fabric import (
    FabricClosed,
    FabricError,
    FabricTimeout,
    Frame,
    FrameError,
    SimEndpoint,
    SocketEndpoint,
    pack_frame,
    sim_pair,
    unpack_frame,
)
from .memory import (
    MemoryFootprint,
    Tier,
    TransferModel,
    activation_nbytes,
    model_state_nbytes,
    pipeline_memory_table,
    sample_nbytes,
)
from .mpi import (
    BlockDecomposition,
    DecomposedShallowWater,
    SimComm,
    halo_exchange_bytes,
)
from .pipeline import (
    FIG9_CONFIGS,
    PipelineConfig,
    PipelineParams,
    TrainingPipelineModel,
)
from .roms_perf import (
    RomsPerfModel,
    RomsWorkload,
    TABLE1_ROWS,
    best_process_grid,
)
from .scaling import PAPER_GPU_COUNTS, ScalingModel, ring_allreduce_seconds
from .serving import PoolCapacityModel, ServingCapacityModel
from .trace import PipelineTrace, StageEvent

__all__ = [
    "GpuSpec",
    "NodeSpec",
    "ClusterSpec",
    "DGX_A100_CLUSTER",
    "Tier",
    "TransferModel",
    "sample_nbytes",
    "activation_nbytes",
    "model_state_nbytes",
    "MemoryFootprint",
    "pipeline_memory_table",
    "SimComm",
    "BlockDecomposition",
    "DecomposedShallowWater",
    "halo_exchange_bytes",
    "FabricError",
    "FrameError",
    "FabricTimeout",
    "FabricClosed",
    "Frame",
    "pack_frame",
    "unpack_frame",
    "SimEndpoint",
    "SocketEndpoint",
    "sim_pair",
    "PipelineParams",
    "PipelineConfig",
    "TrainingPipelineModel",
    "FIG9_CONFIGS",
    "RomsWorkload",
    "RomsPerfModel",
    "TABLE1_ROWS",
    "best_process_grid",
    "ScalingModel",
    "ring_allreduce_seconds",
    "PAPER_GPU_COUNTS",
    "ServingCapacityModel",
    "PoolCapacityModel",
    "PipelineTrace",
    "StageEvent",
]
