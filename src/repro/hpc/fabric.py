"""Host-to-host message fabric: length-prefixed descriptor frames.

:mod:`repro.serve.procpool` moves batches between processes on one
host through shared memory — descriptors over a pipe, bytes through
``/dev/shm``.  Spanning *hosts* needs the same descriptor protocol on
an actual wire, so this module defines the frame format and two
interchangeable transports behind one tiny endpoint interface:

* :func:`pack_frame` / :func:`unpack_frame` — one contiguous buffer
  per message: a fixed 16-byte preamble (magic, header length, body
  length), a pickled header ``(op, seq, meta, descriptors)``, then
  every payload array packed back-to-back at 64-byte-aligned offsets.
  One buffer means one ``sendall`` per frame, never a syscall per
  array, and the receive side reconstructs arrays as zero-copy views
  with ``(shape, dtype, offset)`` descriptors validated against the
  body bounds.  Corruption — truncated body, bad magic, an offset or
  dtype that doesn't fit — raises :class:`FrameError` instead of
  yielding garbage arrays.

* :class:`SimEndpoint` (pair via :func:`sim_pair`) — an in-process
  deterministic fabric for tests and virtual-clock replay.  Frames
  travel through queues; byte accounting goes through a
  :class:`~repro.hpc.mpi.SimComm`, so ``comm.bytes_sent`` /
  ``comm.per_pair`` report the same wire totals a real deployment
  would see.

* :class:`SocketEndpoint` — a real TCP-loopback fabric with actual
  wire serialization (``TCP_NODELAY``, so pipelined frames do not sit
  in Nagle buffers).  :func:`listen_loopback` / :func:`connect_loopback`
  / :func:`accept_loopback` carry a shared-secret token handshake so a
  worker child only ever talks to the parent that spawned it.

Failure taxonomy (callers branch on these):

* :class:`FrameError` — the peer sent bytes that do not parse as a
  frame (truncation, corruption).  The stream cannot be trusted past
  this point.
* :class:`FabricClosed` — the peer hung up cleanly at a frame
  boundary, or this endpoint is closed.
* :class:`FabricTimeout` — no complete frame arrived inside the
  caller's deadline; partial bytes stay buffered and the next call
  resumes where this one stopped (the stream stays framed).

Trust boundary: frame headers are pickled, so unpacking a frame
executes the sender's choice of constructors — the fabric is only
safe between mutually trusting endpoints (here: a parent and the
child it spawned, gated by the loopback token handshake).  Do not
point it at an untrusted peer.
"""

from __future__ import annotations

import hmac
import pickle
import secrets
import select
import socket
import struct
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from .mpi import SimComm

__all__ = [
    "FabricError",
    "FrameError",
    "FabricTimeout",
    "FabricClosed",
    "Frame",
    "pack_frame",
    "unpack_frame",
    "SimEndpoint",
    "sim_pair",
    "SocketEndpoint",
    "listen_loopback",
    "connect_loopback",
    "accept_loopback",
]

#: frame magic — version-bearing, so a format bump is a clean reject
MAGIC = b"RFB1"
_PREAMBLE = struct.Struct("<4sIQ")     # magic, header bytes, body bytes
_ALIGN = 64
#: sanity ceilings — a corrupted length field must fail fast, not
#: trigger a multi-gigabyte allocation while we "wait" for the rest
_MAX_HEADER = 1 << 24
_MAX_BODY = 1 << 34
_TOKEN_BYTES = 16


class FabricError(RuntimeError):
    """Base class for transport failures."""


class FrameError(FabricError):
    """The byte stream does not parse as a frame (bad magic, truncated
    body, descriptor out of bounds, unknown dtype).  The connection is
    unrecoverable — framing is lost."""


class FabricTimeout(FabricError):
    """No complete frame within the deadline.  Recoverable: buffered
    partial bytes are kept and the next ``recv_frame`` resumes."""


class FabricClosed(FabricError):
    """The peer closed at a frame boundary, or this endpoint is
    closed."""


# ----------------------------------------------------------------------
# frame format
# ----------------------------------------------------------------------
@dataclass
class Frame:
    """One decoded message: ``arrays`` are zero-copy views into the
    received buffer (read-only when the buffer is immutable bytes)."""

    op: str
    seq: int
    meta: dict
    arrays: List[np.ndarray] = field(default_factory=list)
    nbytes: int = 0


def pack_frame(op: str, seq: int, meta: Optional[dict] = None,
               arrays: Sequence[np.ndarray] = ()) -> bytes:
    """Encode one message into a single contiguous buffer.

    Arrays are copied once into the body at 64-byte-aligned offsets
    and addressed by ``(shape, dtype-str, offset)`` descriptors in the
    pickled header — the same descriptor triple the shm tier uses, so
    the two transports speak one protocol.
    """
    descs: List[Tuple[Tuple[int, ...], str, int]] = []
    offset = 0
    contiguous = []
    for a in arrays:
        a = np.ascontiguousarray(a)
        contiguous.append(a)
        descs.append((tuple(a.shape), a.dtype.str, offset))
        offset += -(-a.nbytes // _ALIGN) * _ALIGN
    header = pickle.dumps((op, int(seq), meta or {}, descs),
                          protocol=pickle.HIGHEST_PROTOCOL)
    buf = bytearray(_PREAMBLE.size + len(header) + offset)
    _PREAMBLE.pack_into(buf, 0, MAGIC, len(header), offset)
    base = _PREAMBLE.size
    buf[base:base + len(header)] = header
    base += len(header)
    for a, (_, _, off) in zip(contiguous, descs):
        buf[base + off:base + off + a.nbytes] = a.tobytes()
    return bytes(buf)


def unpack_frame(data: bytes) -> Frame:
    """Decode one frame; raises :class:`FrameError` on any corruption
    (bad magic, length mismatch, descriptor out of bounds, unknown
    dtype) rather than returning garbage arrays."""
    if len(data) < _PREAMBLE.size:
        raise FrameError(
            f"truncated frame: {len(data)} bytes < {_PREAMBLE.size}-byte "
            "preamble")
    magic, header_len, body_len = _PREAMBLE.unpack_from(data, 0)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r} (want {MAGIC!r})")
    if header_len > _MAX_HEADER or body_len > _MAX_BODY:
        raise FrameError(
            f"implausible frame lengths (header={header_len}, "
            f"body={body_len})")
    total = _PREAMBLE.size + header_len + body_len
    if len(data) != total:
        raise FrameError(
            f"truncated frame: have {len(data)} bytes, preamble "
            f"declares {total}")
    try:
        op, seq, meta, descs = pickle.loads(
            data[_PREAMBLE.size:_PREAMBLE.size + header_len])
    except Exception as exc:  # noqa: BLE001 — any unpickle failure
        raise FrameError(f"undecodable frame header: {exc}") from exc
    body = memoryview(data)[_PREAMBLE.size + header_len:total]
    try:
        arrays = []
        for shape, dtype_str, off in descs:
            try:
                dt = np.dtype(dtype_str)
            except (TypeError, ValueError) as exc:
                raise FrameError(
                    f"descriptor carries unknown dtype "
                    f"{dtype_str!r}") from exc
            if dt.hasobject or dt.itemsize == 0:
                raise FrameError(
                    f"descriptor carries non-wire dtype {dtype_str!r} "
                    "(object or zero-itemsize)")
            count = 1
            for s in shape:
                s = int(s)
                if s < 0:
                    raise FrameError(
                        f"descriptor shape {shape} has a negative extent")
                count *= s
            nbytes = count * dt.itemsize
            if off < 0 or off + nbytes > len(body):
                raise FrameError(
                    f"descriptor {shape}/{dtype_str}@{off} overruns "
                    f"{len(body)}-byte body")
            arrays.append(np.frombuffer(body, dtype=dt, count=count,
                                        offset=off).reshape(shape))
        return Frame(op=str(op), seq=int(seq), meta=dict(meta),
                     arrays=arrays, nbytes=len(data))
    except FrameError:
        raise
    except Exception as exc:  # noqa: BLE001 — the header pickles fine
        # but its contents are garbage (non-triple descriptors,
        # non-integral shapes, non-dict meta, ...): still a frame
        # problem, never an uncaught error in the caller's reaper loop
        raise FrameError(f"malformed frame header contents: {exc}") from exc


# ----------------------------------------------------------------------
# simulated fabric (in-process, deterministic)
# ----------------------------------------------------------------------
class SimEndpoint:
    """One side of an in-process frame channel.

    Deterministic and allocation-cheap: frames are handed over as-is
    through a deque guarded by one condition variable per pair.  Byte
    accounting runs through the shared :class:`~repro.hpc.mpi.SimComm`
    so tests can assert wire totals (``comm.bytes_sent``,
    ``comm.per_pair``) exactly as they do for halo exchange.
    """

    def __init__(self, rank: int, comm: SimComm, cond: threading.Condition,
                 inbox: Deque[bytes], outbox: Deque[bytes]):
        self.rank = rank
        self.comm = comm
        self._cond = cond
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False
        self._peer_closed = False
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self._peer: Optional["SimEndpoint"] = None

    @property
    def closed(self) -> bool:
        return self._closed

    def send_frame(self, data: bytes) -> None:
        with self._cond:
            if self._closed:
                raise FabricClosed("endpoint is closed")
            if self._peer_closed:
                raise FabricClosed("peer endpoint is closed")
            # account the transfer through SimComm (copies, like a wire)
            delivered = self.comm.sendrecv(
                self.rank, 1 - self.rank,
                np.frombuffer(data, dtype=np.uint8))
            self._outbox.append(delivered.tobytes())
            self.frames_sent += 1
            self.bytes_sent += len(data)
            self._cond.notify_all()

    def recv_frame(self, timeout: Optional[float] = None) -> bytes:
        with self._cond:
            if not self._cond.wait_for(
                    lambda: self._inbox or self._closed or self._peer_closed,
                    timeout=timeout):
                raise FabricTimeout(
                    f"no frame within {timeout}s on sim endpoint")
            if self._inbox:
                data = self._inbox.popleft()
                self.frames_received += 1
                self.bytes_received += len(data)
                return data
            raise FabricClosed("sim endpoint closed")

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            if self._peer is not None:
                self._peer._peer_closed = True
            self._cond.notify_all()


def sim_pair(comm: Optional[SimComm] = None
             ) -> Tuple[SimEndpoint, SimEndpoint]:
    """A connected pair of :class:`SimEndpoint`\\ s sharing one
    :class:`~repro.hpc.mpi.SimComm` (rank 0 ↔ rank 1)."""
    comm = comm if comm is not None else SimComm(2)
    cond = threading.Condition()
    a_to_b: Deque[bytes] = deque()
    b_to_a: Deque[bytes] = deque()
    a = SimEndpoint(0, comm, cond, inbox=b_to_a, outbox=a_to_b)
    b = SimEndpoint(1, comm, cond, inbox=a_to_b, outbox=b_to_a)
    a._peer, b._peer = b, a
    return a, b


# ----------------------------------------------------------------------
# socket fabric (real wire, TCP loopback)
# ----------------------------------------------------------------------
class SocketEndpoint:
    """Frame transport over a connected stream socket.

    Receive is resumable: a :class:`FabricTimeout` mid-frame keeps the
    partial bytes in an internal buffer, so short-timeout polling (the
    reaper loop's heartbeat check) never loses framing.  EOF at a
    frame boundary is :class:`FabricClosed`; EOF with buffered partial
    bytes is a :class:`FrameError` (the peer died mid-send).

    Receive deadlines are implemented with :func:`select.select`, not
    ``settimeout`` — the socket itself stays fully blocking, so a
    concurrent ``send_frame`` from another thread (pipelined multi-MB
    batches while the peer is mid-compute and not draining) blocks
    until the kernel buffer frees instead of inheriting a ~0.02–0.2 s
    polling timeout and spuriously declaring the peer dead.
    """

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(None)      # sends must block, never poll-timeout
        self._sock = sock
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._closed = False
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def send_frame(self, data: bytes) -> None:
        with self._send_lock:
            if self._closed:
                raise FabricClosed("endpoint is closed")
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise FabricClosed(f"send failed: {exc}") from exc
            self.frames_sent += 1
            self.bytes_sent += len(data)

    def recv_frame(self, timeout: Optional[float] = None) -> bytes:
        import time
        deadline = None if timeout is None else \
            time.perf_counter() + timeout
        while True:
            frame = self._try_extract()
            if frame is not None:
                return frame
            if self._closed:
                raise FabricClosed("endpoint is closed")
            remaining = None if deadline is None else \
                deadline - time.perf_counter()
            if remaining is not None and remaining <= 0:
                raise FabricTimeout(
                    f"no complete frame within {timeout}s")
            if remaining is not None:
                try:
                    ready, _, _ = select.select(
                        [self._sock], [], [], remaining)
                except (OSError, ValueError) as exc:
                    # fd torn down under us by a concurrent close()
                    raise FabricClosed(f"recv failed: {exc}") from exc
                if not ready:
                    raise FabricTimeout(
                        f"no complete frame within {timeout}s")
            try:
                chunk = self._sock.recv(1 << 18)
            except socket.timeout as exc:
                raise FabricTimeout(
                    f"no complete frame within {timeout}s") from exc
            except OSError as exc:
                if self._closed:
                    raise FabricClosed("endpoint is closed") from exc
                raise FabricClosed(f"recv failed: {exc}") from exc
            if not chunk:
                if self._buf:
                    raise FrameError(
                        f"peer closed mid-frame with {len(self._buf)} "
                        "bytes buffered")
                raise FabricClosed("peer closed the connection")
            self._buf += chunk

    def _try_extract(self) -> Optional[bytes]:
        if len(self._buf) < _PREAMBLE.size:
            return None
        magic, header_len, body_len = _PREAMBLE.unpack_from(self._buf, 0)
        if magic != MAGIC:
            raise FrameError(f"bad magic {magic!r} (want {MAGIC!r})")
        if header_len > _MAX_HEADER or body_len > _MAX_BODY:
            raise FrameError(
                f"implausible frame lengths (header={header_len}, "
                f"body={body_len})")
        total = _PREAMBLE.size + header_len + body_len
        if len(self._buf) < total:
            return None
        data = bytes(self._buf[:total])
        del self._buf[:total]
        self.frames_received += 1
        self.bytes_received += len(data)
        return data

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def listen_loopback() -> Tuple[socket.socket, int, str]:
    """Bind an ephemeral loopback listener; returns
    ``(listener, port, token)`` where ``token`` is the shared secret
    the connecting peer must present."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    token = secrets.token_hex(_TOKEN_BYTES)
    return listener, listener.getsockname()[1], token


def connect_loopback(port: int, token: str,
                     timeout: float = 120.0) -> SocketEndpoint:
    """Connect to a loopback listener and present the token."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.sendall(token.encode("ascii"))
    sock.settimeout(None)
    return SocketEndpoint(sock)


def accept_loopback(listener: socket.socket, token: str,
                    timeout: float = 120.0) -> SocketEndpoint:
    """Accept one connection and verify its token; a peer that fails
    the handshake is dropped and the accept fails."""
    listener.settimeout(timeout)
    try:
        sock, _ = listener.accept()
    except socket.timeout as exc:
        raise FabricTimeout(
            f"no connection within {timeout}s") from exc
    want = token.encode("ascii")
    sock.settimeout(timeout)
    got = bytearray()
    try:
        while len(got) < len(want):
            chunk = sock.recv(len(want) - len(got))
            if not chunk:
                break
            got += chunk
    except OSError:
        pass
    if not hmac.compare_digest(bytes(got), want):
        sock.close()
        raise FabricError("peer failed the token handshake")
    sock.settimeout(None)
    return SocketEndpoint(sock)
