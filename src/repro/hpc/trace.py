"""Pipeline event tracing: per-iteration stage timelines.

Renders how the training-pipeline stages overlap — the mechanism behind
Fig. 9's ablations.  :class:`PipelineTrace` lays out load / h2d /
compute events for a sequence of iterations under the same overlap
rules as :class:`~repro.hpc.pipeline.TrainingPipelineModel` and can
print an ASCII timeline, making the "prefetch hides I/O" and "pinned
copies overlap compute" claims inspectable event by event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .pipeline import PipelineConfig, PipelineParams, TrainingPipelineModel

__all__ = ["StageEvent", "PipelineTrace"]


@dataclass(frozen=True)
class StageEvent:
    """One stage execution on one lane of the timeline."""

    iteration: int
    stage: str          # "load" | "h2d" | "compute" | "update"
    lane: str           # "io" | "copy" | "gpu"
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class PipelineTrace:
    """Event-level simulation of the training pipeline.

    Lanes: ``io`` (prefetch workers staging from storage), ``copy``
    (host→device engine), ``gpu`` (compute + optimiser).  The schedule
    follows the pipeline model's overlap rules:

    * with prefetch, iteration *k*'s load may run during iteration
      *k−1*'s compute, spread over the worker pool;
    * pinned + non-blocking copies run on the copy lane concurrently
      with compute; pageable copies block the gpu lane;
    * compute for a batch starts only when its data is resident.
    """

    def __init__(self, params: Optional[PipelineParams] = None):
        self.params = params or PipelineParams()
        self.model = TrainingPipelineModel(self.params)

    # ------------------------------------------------------------------
    def run(self, config: PipelineConfig, iterations: int = 4
            ) -> List[StageEvent]:
        s = self.model.stage_times(config)
        p = self.params
        events: List[StageEvent] = []

        io_free = 0.0        # when the io lane can start the next load
        gpu_free = 0.0       # when the gpu lane is next available
        data_ready = 0.0     # when iteration k's batch is on-device

        for k in range(iterations):
            # --- staging -------------------------------------------------
            load_time = s["load"] / max(1, p.prefetch_workers) \
                if config.prefetch else s["load"]
            load_start = max(io_free, 0.0 if config.prefetch
                             else gpu_free)
            load_end = load_start + load_time
            events.append(StageEvent(k, "load", "io", load_start, load_end))
            io_free = load_end

            # --- host → device -------------------------------------------
            if config.pin_memory:
                h2d_start = load_end
                h2d_end = h2d_start + s["h2d"]
                events.append(StageEvent(k, "h2d", "copy",
                                         h2d_start, h2d_end))
            else:
                h2d_start = max(load_end, gpu_free)   # blocks the gpu lane
                h2d_end = h2d_start + s["h2d"]
                events.append(StageEvent(k, "h2d", "gpu",
                                         h2d_start, h2d_end))
                gpu_free = h2d_end
            data_ready = h2d_end

            # --- compute + update ------------------------------------------
            c_start = max(gpu_free, data_ready)
            c_end = c_start + s["compute"]
            events.append(StageEvent(k, "compute", "gpu", c_start, c_end))
            u_end = c_end + s["fixed"]
            events.append(StageEvent(k, "update", "gpu", c_end, u_end))
            gpu_free = u_end

        return events

    # ------------------------------------------------------------------
    def steady_state_iteration(self, config: PipelineConfig,
                               iterations: int = 8) -> float:
        """Per-iteration time once the pipeline is warm."""
        events = self.run(config, iterations)
        ends = {}
        for e in events:
            ends[e.iteration] = max(ends.get(e.iteration, 0.0), e.end)
        if iterations < 3:
            return ends[iterations - 1] / iterations
        return (ends[iterations - 1] - ends[1]) / (iterations - 2)

    def render(self, config: PipelineConfig, iterations: int = 3,
               width: int = 72) -> str:
        """ASCII timeline: one row per lane, one block per event."""
        events = self.run(config, iterations)
        horizon = max(e.end for e in events)
        scale = (width - 10) / horizon if horizon > 0 else 1.0
        lanes: Dict[str, List[str]] = {
            lane: [" "] * width for lane in ("io", "copy", "gpu")}
        glyph = {"load": "L", "h2d": "H", "compute": "C", "update": "u"}
        for e in events:
            a = 10 + int(e.start * scale)
            b = max(a + 1, 10 + int(e.end * scale))
            for x in range(a, min(b, width)):
                lanes[e.lane][x] = glyph[e.stage]
        lines = [f"{config.name} — {horizon:.2f}s for "
                 f"{iterations} iterations"]
        for lane in ("io", "copy", "gpu"):
            lines.append(f"{lane:>8} |" + "".join(lanes[lane]))
        return "\n".join(lines)
