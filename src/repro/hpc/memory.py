"""Memory-hierarchy model: tiers, transfers, and footprint accounting.

Reproduces the paper's Table II analysis: each training-pipeline stage
stores its working set in a tier (SSD → CPU RAM → GPU HBM) and moves
data across tier boundaries at the tier-pair bandwidth.  Sizes are
computed from the actual tensor shapes of the configured surrogate, so
the table regenerates for any mesh/patch configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List

import numpy as np

from ..swin.model import SurrogateConfig
from .cluster import NodeSpec

__all__ = ["Tier", "TransferModel", "sample_nbytes", "activation_nbytes",
           "model_state_nbytes", "MemoryFootprint", "pipeline_memory_table"]

GB = 1024 ** 3


class Tier(Enum):
    """Storage tiers of the training platform."""

    SSD = "ssd"
    CPU = "cpu_ram"
    GPU = "gpu_hbm"


@dataclass(frozen=True)
class TransferModel:
    """Transfer times between adjacent tiers."""

    node: NodeSpec
    pinned: bool = True

    def bandwidth(self, src: Tier, dst: Tier) -> float:
        if (src, dst) == (Tier.SSD, Tier.CPU):
            return self.node.ssd_read_bandwidth
        if (src, dst) == (Tier.CPU, Tier.GPU):
            return (self.node.pcie_h2d_pinned if self.pinned
                    else self.node.pcie_h2d_pageable)
        if (src, dst) == (Tier.GPU, Tier.GPU):
            return self.node.gpu.hbm_bandwidth
        raise ValueError(f"no modelled path {src} → {dst}")

    def seconds(self, nbytes: int, src: Tier, dst: Tier) -> float:
        return nbytes / self.bandwidth(src, dst)


# ----------------------------------------------------------------------
# footprint calculators (shapes from the surrogate configuration)
# ----------------------------------------------------------------------
def sample_nbytes(cfg: SurrogateConfig, dtype_bytes: int = 2) -> int:
    """One training sample: inputs + targets at fp16.

    (3, H, W, D, T) + (1, H, W, T), twice (input and target).
    """
    H, W, D = cfg.mesh
    T = cfg.time_steps
    vol = 3 * H * W * D * T
    surf = H * W * T
    return 2 * (vol + surf) * dtype_bytes


def activation_nbytes(cfg: SurrogateConfig, batch: int = 1,
                      dtype_bytes: int = 2,
                      checkpointing: bool = False) -> int:
    """Forward-activation footprint of the encoder + decoder.

    Encoder: every Swin block retains ≈ 12·C per token (LN/QKV/attn-out/
    proj/residual/MLP intermediates) plus 2·heads·N_win attention maps
    per token.  With SW-MSA checkpointing only the block-boundary
    activations (2·C per token) survive the forward pass (paper §III-D).

    Decoder: transposed-conv/BN/GELU chains at progressively full
    resolution; the patch-recovery stages at the original mesh dominate
    (this is why the paper's Table II reports 42 GB for one sample).
    Checkpointing targets the transformer blocks, so the decoder terms
    are unaffected by the flag.
    """
    hp, wp, dp, T = cfg.latent_dims
    total = 0
    C = cfg.embed_dim
    n_stage = len(cfg.depths)
    dims_per_stage = []
    for i in range(n_stage):
        dims_per_stage.append((hp, wp, dp, C))
        tokens = hp * wp * dp * T
        win = cfg.window_first if i == 0 else cfg.window_rest
        n_win = int(np.prod([min(w, d) for w, d in
                             zip(win, (hp, wp, dp, T))]))
        if checkpointing:
            per_token = 2 * C            # boundary activations only
        else:
            attn_maps = 2 * cfg.num_heads[i] * n_win   # scores + softmax
            per_token = 12 * C + attn_maps
        total += int(cfg.depths[i] * tokens * per_token)
        if i < n_stage - 1:
            hp, wp, dp = hp // 2, wp // 2, dp // 2
            C *= 2

    # decoder up-path: ~6 intermediates (convT, BN, GELU, concat, fuse,
    # GELU) at each upsampled resolution
    for (sh, sw, sd, sc) in reversed(dims_per_stage[:-1]):
        total += 6 * sh * sw * sd * T * sc
    # patch recovery at the full mesh: 4 tensors of width embed_dim for
    # the 3-D branch and the 2-D branch each
    H, W, D = cfg.mesh
    total += 4 * cfg.embed_dim * H * W * D * T      # 3-D recover chain
    total += 4 * cfg.embed_dim * H * W * T          # 2-D recover chain
    total += 2 * (3 * H * W * D + H * W) * T        # outputs + grads
    return int(total * batch * dtype_bytes)


def model_state_nbytes(cfg: SurrogateConfig, dtype_bytes: int = 4,
                       optimizer_multiplier: int = 3) -> int:
    """Weights + gradients + Adam moments (≈ params × (1 + 1 + 2))."""
    from ..swin.model import CoastalSurrogate
    model = CoastalSurrogate(cfg)
    n = model.num_parameters()
    return n * dtype_bytes * (1 + optimizer_multiplier)


@dataclass(frozen=True)
class MemoryFootprint:
    """One pipeline-stage row of Table II."""

    stage: str
    nbytes: int
    path: str
    bandwidth: float

    @property
    def gigabytes(self) -> float:
        return self.nbytes / GB


def pipeline_memory_table(cfg: SurrogateConfig, node: NodeSpec,
                          batch: int = 1,
                          checkpointing: bool = False
                          ) -> List[MemoryFootprint]:
    """Regenerate Table II for a given surrogate configuration."""
    return [
        MemoryFootprint(
            stage="Training Sample Loading",
            nbytes=sample_nbytes(cfg) * batch,
            path="SSD → CPU memory → GPU memory",
            bandwidth=node.ssd_read_bandwidth,
        ),
        MemoryFootprint(
            stage="Training Sample Processing",
            nbytes=activation_nbytes(cfg, batch, checkpointing=checkpointing),
            path="GPU memory",
            bandwidth=node.gpu.hbm_bandwidth,
        ),
        MemoryFootprint(
            stage="Model Parameter Updating",
            nbytes=model_state_nbytes(cfg),
            path="GPU memory",
            bandwidth=node.gpu.hbm_bandwidth,
        ),
    ]
