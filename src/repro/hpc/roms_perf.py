"""Analytic ROMS cost model (paper Table I, Fig. 8 fallback costs).

MPI ROMS cost is modelled as computation (cell-steps per core per
second) plus halo-exchange communication per step, with the halo volume
taken from the *actual* block decomposition
(:func:`repro.hpc.mpi.halo_exchange_bytes`).  The single computation
constant is calibrated on the paper's own benchmark row — 898×598×12,
12-day horizon, 512 cores, 9,908 s — and then *predicts* the other
Table I rows and the per-episode fallback costs of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .cluster import ClusterSpec, DGX_A100_CLUSTER
from .mpi import halo_exchange_bytes

__all__ = ["RomsWorkload", "RomsPerfModel", "TABLE1_ROWS", "best_process_grid"]

DAY = 86400.0

#: Published rows of the paper's Table I (solution, mesh, horizon,
#: cores, measured seconds).
TABLE1_ROWS: Tuple[Dict, ...] = (
    {"solution": "[8] SGI Altix 3700", "mesh": (1520, 1088, 30),
     "horizon_days": 3.0, "cores": 256, "paper_seconds": 19_915.0},
    {"solution": "[23] Xeon 8124-M (small)", "mesh": (422, 412, 40),
     "horizon_days": 3.0, "cores": 36, "paper_seconds": 1_200.0},
    {"solution": "[23] Xeon 8124-M (large)", "mesh": (846, 826, 40),
     "horizon_days": 3.0, "cores": 36, "paper_seconds": 6_000.0},
    {"solution": "[24] Xeon E3-1220", "mesh": (360, 400, 20),
     "horizon_days": 10.0 / 24.0, "cores": 32, "paper_seconds": 1_082.0},
    {"solution": "[25] Xeon E5-2670", "mesh": (212, 222, 32),
     "horizon_days": 365.0, "cores": 128, "paper_seconds": 144_000.0},
    {"solution": "Traditional MPI ROMS", "mesh": (898, 598, 12),
     "horizon_days": 12.0, "cores": 512, "paper_seconds": 9_908.0},
)


def best_process_grid(cores: int, ny: int, nx: int) -> Tuple[int, int]:
    """Most-square pr×pc factorisation of ``cores`` that fits the mesh."""
    best = (1, cores)
    best_score = float("inf")
    for pr in range(1, cores + 1):
        if cores % pr:
            continue
        pc = cores // pr
        if pr > ny or pc > nx:
            continue
        score = abs(pr / pc - ny / nx)
        if score < best_score:
            best_score = score
            best = (pr, pc)
    return best


@dataclass(frozen=True)
class RomsWorkload:
    """One ROMS simulation job."""

    mesh: Tuple[int, int, int]           # (ny, nx, nz)
    horizon_days: float
    cores: int
    baroclinic_dt: float = 30.0          # typical coastal ROMS step

    @property
    def cells(self) -> int:
        ny, nx, nz = self.mesh
        return ny * nx * nz

    @property
    def steps(self) -> int:
        return int(round(self.horizon_days * DAY / self.baroclinic_dt))


@dataclass
class RomsPerfModel:
    """Computation + communication cost model for MPI ROMS.

    Attributes
    ----------
    cell_step_rate: cell-steps per core per second (calibrated).
    cluster: interconnect characteristics for halo-exchange time.
    fields_per_exchange: prognostic 3-D fields exchanged per step
        (free surface, u, v, T, S ≈ 5 in full ROMS).
    """

    cell_step_rate: float = 4.4e4
    cluster: ClusterSpec = field(default_factory=lambda: DGX_A100_CLUSTER)
    fields_per_exchange: int = 5

    # ------------------------------------------------------------------
    def calibrate(self, workload: RomsWorkload, measured_seconds: float
                  ) -> "RomsPerfModel":
        """Solve ``cell_step_rate`` so the model reproduces a benchmark."""
        comm = self.comm_seconds_per_step(workload) * workload.steps
        comp_available = measured_seconds - comm
        if comp_available <= 0:
            raise ValueError("measured time is below modelled comm time")
        rate = workload.cells * workload.steps / (
            workload.cores * comp_available)
        self.cell_step_rate = float(rate)
        return self

    @staticmethod
    def calibrated_to_paper() -> "RomsPerfModel":
        """Model calibrated to the paper's own 512-core benchmark row."""
        row = TABLE1_ROWS[-1]
        wl = RomsWorkload(
            (row["mesh"][0], row["mesh"][1], row["mesh"][2]),
            row["horizon_days"], row["cores"])
        return RomsPerfModel().calibrate(wl, row["paper_seconds"])

    # ------------------------------------------------------------------
    def comm_seconds_per_step(self, workload: RomsWorkload) -> float:
        """Halo-exchange time per step across all ranks (critical path
        ≈ per-rank time; ranks exchange concurrently)."""
        ny, nx, nz = workload.mesh
        pr, pc = best_process_grid(workload.cores, ny, nx)
        total_bytes = halo_exchange_bytes(ny, nx, pr, pc, halo=2,
                                          fields=self.fields_per_exchange) * nz
        per_rank = total_bytes / workload.cores
        bw = self.cluster.ib_bandwidth
        latency = 4 * self.cluster.ib_latency        # ≤4 neighbour messages
        return per_rank / bw + latency

    def comp_seconds(self, workload: RomsWorkload) -> float:
        return workload.cells * workload.steps / (
            workload.cores * self.cell_step_rate)

    def simulation_seconds(self, workload: RomsWorkload) -> float:
        """Total wall-clock of one simulation job."""
        return self.comp_seconds(workload) + \
            self.comm_seconds_per_step(workload) * workload.steps

    def parallel_efficiency(self, workload: RomsWorkload) -> float:
        comp = self.comp_seconds(workload)
        return comp / self.simulation_seconds(workload)

    # ------------------------------------------------------------------
    def episode_seconds(self, workload: RomsWorkload,
                        episode_days: float) -> float:
        """Cost of re-simulating one episode (the Fig. 8 fallback unit)."""
        scale = episode_days / workload.horizon_days
        return self.simulation_seconds(workload) * scale

    def table1(self) -> List[Dict]:
        """Model every Table I row (paper value vs. model prediction)."""
        out = []
        for row in TABLE1_ROWS:
            wl = RomsWorkload(tuple(row["mesh"]), row["horizon_days"],
                              row["cores"])
            out.append({
                **row,
                "model_seconds": self.simulation_seconds(wl),
                "efficiency": self.parallel_efficiency(wl),
            })
        return out
