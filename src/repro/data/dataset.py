"""Sliding-window episode dataset (paper §III-B).

An *episode* is ``T`` consecutive snapshots whose first slot is the
initial condition: the surrogate input carries the full IC in slot 0
and only the lateral boundary rims in slots 1..T−1; the target carries
the full fields in every slot.  The training year is augmented with a
sliding window (stride 6, as in the paper); test windows do not
overlap.

Conventions (see DESIGN.md): with ``T = 24`` and a 0.5-h interval an
episode spans 11.5 h of forecast — the scaled analogue of the paper's
12-hour fine model; with a 12-h interval it spans 11.5 days (coarse
model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .preprocess import Normalizer, pad_mesh, padded_shape
from .store import SnapshotStore

__all__ = ["EpisodeSample", "SlidingWindowDataset", "assemble_episode_input",
           "assemble_episode_input_batch"]


@dataclass
class EpisodeSample:
    """One training/evaluation episode.

    Attributes
    ----------
    x3d: (3, H', W', D, T) input — IC in slot 0, boundary rims after.
    x2d: (1, H', W', T) input for ζ, same convention.
    y3d: (3, H', W', D, T) full-field target.
    y2d: (1, H', W', T) full-field target.
    start: index of the first snapshot in the source store.
    """

    x3d: np.ndarray
    x2d: np.ndarray
    y3d: np.ndarray
    y2d: np.ndarray
    start: int


def _rim_mask(h: int, w: int, width: int, dtype) -> np.ndarray:
    """(H, W) mask that is 1 on a boundary rim of ``width`` cells."""
    mask = np.zeros((h, w), dtype=dtype)
    mask[:width, :] = 1
    mask[-width:, :] = 1
    mask[:, :width] = 1
    mask[:, -width:] = 1
    return mask


def assemble_episode_input_batch(u3: np.ndarray, v3: np.ndarray,
                                 w3: np.ndarray, zeta: np.ndarray,
                                 boundary_width: int = 1
                                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Build batched (x3d, x2d) surrogate inputs, vectorised over N.

    Parameters
    ----------
    u3, v3, w3: (N, T, H, W, D) full fields; zeta: (N, T, H, W).
    boundary_width: rim width preserved in slots 1..T−1.

    Returns
    -------
    x3d: (N, 3, H, W, D, T); x2d: (N, 1, H, W, T).
    """
    vol = np.stack([u3, v3, w3], axis=1)       # (N, 3, T, H, W, D)
    H, W = vol.shape[3:5]
    mask = _rim_mask(H, W, boundary_width, vol.dtype)
    x3d = vol * mask[:, :, None]               # rims only, all slots
    x3d[:, :, 0] = vol[:, :, 0]                # slot 0: full IC
    zeta = np.asarray(zeta)
    x2d = zeta[:, None] * mask                 # (N, 1, T, H, W)
    x2d[:, 0, 0] = zeta[:, 0]
    # time axis last: (N, 3, H, W, D, T) / (N, 1, H, W, T)
    return np.moveaxis(x3d, 2, -1), np.moveaxis(x2d, 2, -1)


def assemble_episode_input(u3: np.ndarray, v3: np.ndarray, w3: np.ndarray,
                           zeta: np.ndarray, boundary_width: int = 1
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Build (x3d, x2d) surrogate inputs from full-field windows.

    Batch-1 special case of :func:`assemble_episode_input_batch`.

    Parameters
    ----------
    u3, v3, w3: (T, H, W, D) full fields; zeta: (T, H, W).
    boundary_width: rim width preserved in slots 1..T−1.

    Returns
    -------
    x3d: (3, H, W, D, T); x2d: (1, H, W, T).
    """
    x3d, x2d = assemble_episode_input_batch(
        np.asarray(u3)[None], np.asarray(v3)[None], np.asarray(w3)[None],
        np.asarray(zeta)[None], boundary_width)
    return x3d[0], x2d[0]


class SlidingWindowDataset:
    """Episodes cut from a :class:`SnapshotStore` with optional overlap.

    Parameters
    ----------
    store: source archive.
    normalizer: fitted z-score statistics (from the *training* archive).
    window: episode length T.
    stride: window start spacing (6 for training augmentation, use
        ``window`` for non-overlapping test windows).
    pad_multiple: (mh, mw) horizontal patch multiples; snapshots are
        zero-padded so H, W divide evenly (paper's 900×600 trick).
    pad_to: explicit padded (H', W') target overriding ``pad_multiple``
        — use the surrogate's ``config.mesh`` when the mesh must also
        satisfy patch-merging divisibility, not just the patch size.
    boundary_width: rim width of the boundary-condition slots.
    dtype: on-sample dtype — ``float16`` mirrors the paper's storage.
    """

    VAR3D = ("u3", "v3", "w3")

    def __init__(self, store: SnapshotStore, normalizer: Normalizer,
                 window: int = 24, stride: int = 6,
                 pad_multiple: Tuple[int, int] = (4, 4),
                 pad_to: Optional[Tuple[int, int]] = None,
                 boundary_width: int = 1,
                 dtype: str = "float16"):
        self.store = store
        self.normalizer = normalizer
        self.window = int(window)
        self.stride = int(stride)
        self.boundary_width = int(boundary_width)
        self.dtype = np.dtype(dtype)
        H, W, _ = store.meta.mesh
        self.orig_hw = (H, W)
        self.padded_hw = tuple(pad_to) if pad_to is not None \
            else padded_shape(H, W, *pad_multiple)
        n = len(store)
        if n < self.window:
            raise ValueError(
                f"store has {n} snapshots < window {self.window}")
        self.starts: List[int] = list(
            range(0, n - self.window + 1, self.stride))

    def __len__(self) -> int:
        return len(self.starts)

    # ------------------------------------------------------------------
    def _load_window(self, start: int) -> Dict[str, np.ndarray]:
        raw = self.store.read_window(start, self.window)
        out: Dict[str, np.ndarray] = {}
        ph, pw = self.padded_hw
        for var, arr in raw.items():
            a = self.normalizer.normalize(var, arr.astype(np.float32))
            # pad the (H, W) axes, which are axes 1, 2 of (T, H, W[, D])
            a = np.moveaxis(a, 0, -1)            # (H, W[, D], T)
            a = pad_mesh(a, ph, pw)
            out[var] = np.moveaxis(a, -1, 0)     # back to (T, H', W'[, D])
        return out

    def __getitem__(self, i: int) -> EpisodeSample:
        if not 0 <= i < len(self):
            raise IndexError(i)
        start = self.starts[i]
        w = self._load_window(start)
        x3d, x2d = assemble_episode_input(
            w["u3"], w["v3"], w["w3"], w["zeta"], self.boundary_width)
        y3d = np.moveaxis(
            np.stack([w[v] for v in self.VAR3D], axis=0), 1, -1)
        y2d = np.moveaxis(w["zeta"][None], 1, -1)
        cast = lambda a: np.ascontiguousarray(a, dtype=self.dtype)
        return EpisodeSample(cast(x3d), cast(x2d), cast(y3d), cast(y2d),
                             start)

    # ------------------------------------------------------------------
    def split(self, fraction: float, seed: int = 0
              ) -> Tuple["SlidingWindowDataset", "SlidingWindowDataset"]:
        """Random train/validation split of the window starts (9:1 in
        the paper)."""
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.starts))
        n_first = int(round(fraction * len(order)))
        first = _SubsetDataset(self, [self.starts[k] for k in order[:n_first]])
        second = _SubsetDataset(self, [self.starts[k] for k in order[n_first:]])
        return first, second


class _SubsetDataset(SlidingWindowDataset):
    """View over a parent dataset restricted to specific window starts."""

    def __init__(self, parent: SlidingWindowDataset, starts: List[int]):
        # share configuration without re-validating the store
        self.store = parent.store
        self.normalizer = parent.normalizer
        self.window = parent.window
        self.stride = parent.stride
        self.boundary_width = parent.boundary_width
        self.dtype = parent.dtype
        self.orig_hw = parent.orig_hw
        self.padded_hw = parent.padded_hw
        self.starts = list(starts)
