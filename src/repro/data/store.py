"""On-disk snapshot archive.

The paper's training corpus is a decade of half-hourly ROMS snapshots
(2.5–2.6 TB as FP16 shards on SSD).  :class:`SnapshotStore` reproduces
that layout at our scale: one ``.npy`` shard per snapshot per variable
plus a JSON manifest, with byte-level read accounting so the HPC
pipeline model (Table II / Fig. 9) can be driven by *measured* I/O
volumes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ocean.model import Snapshot

__all__ = ["StoreMeta", "SnapshotStore"]

VARIABLES = ("u3", "v3", "w3", "zeta")


@dataclass(frozen=True)
class StoreMeta:
    """Manifest of one archive."""

    n_snapshots: int
    interval_s: float
    mesh: Tuple[int, int, int]       # (H, W, D)
    dtype: str
    t0: float

    def to_json(self) -> Dict:
        return {
            "n_snapshots": self.n_snapshots,
            "interval_s": self.interval_s,
            "mesh": list(self.mesh),
            "dtype": self.dtype,
            "t0": self.t0,
        }

    @staticmethod
    def from_json(d: Dict) -> "StoreMeta":
        return StoreMeta(
            n_snapshots=int(d["n_snapshots"]),
            interval_s=float(d["interval_s"]),
            mesh=tuple(d["mesh"]),
            dtype=str(d["dtype"]),
            t0=float(d.get("t0", 0.0)),
        )


class SnapshotStore:
    """Directory of per-snapshot ``.npy`` shards plus a manifest.

    Layout::

        root/
          manifest.json
          u3_000000.npy   v3_000000.npy   w3_000000.npy   zeta_000000.npy
          u3_000001.npy   ...
    """

    def __init__(self, root: Path | str):
        self.root = Path(root)
        self.bytes_read = 0          # I/O accounting for the perf model
        self.bytes_written = 0
        self._meta: Optional[StoreMeta] = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def write(self, snapshots: Sequence[Snapshot], interval_s: float,
              dtype: str = "float16") -> StoreMeta:
        """Persist a snapshot sequence (converted to ``dtype``)."""
        self.root.mkdir(parents=True, exist_ok=True)
        np_dtype = np.dtype(dtype)
        for idx, snap in enumerate(snapshots):
            for var in VARIABLES:
                arr = getattr(snap, var).astype(np_dtype)
                path = self.root / f"{var}_{idx:06d}.npy"
                np.save(path, arr)
                self.bytes_written += arr.nbytes
        first = snapshots[0]
        meta = StoreMeta(
            n_snapshots=len(snapshots),
            interval_s=float(interval_s),
            mesh=first.u3.shape,
            dtype=dtype,
            t0=float(first.t),
        )
        (self.root / "manifest.json").write_text(json.dumps(meta.to_json()))
        self._meta = meta
        return meta

    def append(self, snapshots: Sequence[Snapshot]) -> StoreMeta:
        """Extend an existing archive (interval must match)."""
        meta = self.meta
        np_dtype = np.dtype(meta.dtype)
        base = meta.n_snapshots
        for k, snap in enumerate(snapshots):
            idx = base + k
            for var in VARIABLES:
                arr = getattr(snap, var).astype(np_dtype)
                np.save(self.root / f"{var}_{idx:06d}.npy", arr)
                self.bytes_written += arr.nbytes
        new_meta = StoreMeta(meta.n_snapshots + len(snapshots),
                             meta.interval_s, meta.mesh, meta.dtype, meta.t0)
        (self.root / "manifest.json").write_text(json.dumps(new_meta.to_json()))
        self._meta = new_meta
        return new_meta

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def meta(self) -> StoreMeta:
        if self._meta is None:
            manifest = self.root / "manifest.json"
            if not manifest.exists():
                raise FileNotFoundError(f"no manifest at {manifest}")
            self._meta = StoreMeta.from_json(json.loads(manifest.read_text()))
        return self._meta

    def __len__(self) -> int:
        return self.meta.n_snapshots

    def read_var(self, var: str, idx: int) -> np.ndarray:
        if var not in VARIABLES:
            raise KeyError(f"unknown variable {var!r}; expected {VARIABLES}")
        arr = np.load(self.root / f"{var}_{idx:06d}.npy")
        self.bytes_read += arr.nbytes
        return arr

    def read_snapshot(self, idx: int) -> Dict[str, np.ndarray]:
        """All four variables of snapshot ``idx``."""
        return {var: self.read_var(var, idx) for var in VARIABLES}

    def read_window(self, start: int, length: int
                    ) -> Dict[str, np.ndarray]:
        """Stacked window: u3/v3/w3 → (T, H, W, D); zeta → (T, H, W)."""
        if start < 0 or start + length > len(self):
            raise IndexError(
                f"window [{start}, {start + length}) out of range "
                f"for store of {len(self)} snapshots")
        out: Dict[str, np.ndarray] = {}
        for var in VARIABLES:
            out[var] = np.stack(
                [self.read_var(var, start + k) for k in range(length)], axis=0)
        return out

    def snapshot_nbytes(self) -> int:
        """Bytes of one full snapshot (all variables) at the stored dtype."""
        meta = self.meta
        H, W, D = meta.mesh
        per = np.dtype(meta.dtype).itemsize
        return (3 * H * W * D + H * W) * per

    def times(self) -> np.ndarray:
        meta = self.meta
        return meta.t0 + meta.interval_s * (np.arange(meta.n_snapshots) + 1)
