"""Dataset generation: run the ocean substrate, archive the snapshots.

The paper trains on the 2011 ROMS year and tests on 2012.  At our
scale, :func:`build_archives` runs the tidal model once through a
spin-up, a "training year" segment, and a "test year" segment, writing
one :class:`SnapshotStore` per segment plus the fitted normaliser.
:func:`resample_store` builds the coarse-interval archive for the
12-day model by subsampling the fine archive (every 24th half-hour
snapshot = 12-hourly), exactly like the paper's resampling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

import numpy as np

from ..ocean.model import OceanConfig, RomsLikeModel
from .preprocess import Normalizer
from .store import SnapshotStore, VARIABLES

__all__ = ["ArchiveBundle", "build_archives", "resample_store"]

DAY = 86400.0


@dataclass(frozen=True)
class ArchiveBundle:
    """Paths and metadata of a generated dataset."""

    root: Path
    train: Path
    test: Path
    normalizer: Path
    ocean_config: OceanConfig

    def open_train(self) -> SnapshotStore:
        return SnapshotStore(self.train)

    def open_test(self) -> SnapshotStore:
        return SnapshotStore(self.test)

    def open_normalizer(self) -> Normalizer:
        return Normalizer.load(self.normalizer)


def build_archives(out_dir: Path | str,
                   ocean_config: Optional[OceanConfig] = None,
                   train_days: float = 8.0,
                   test_days: float = 4.0,
                   spinup_days: float = 1.0,
                   dtype: str = "float16",
                   force: bool = False) -> ArchiveBundle:
    """Generate (or reuse) the train/test snapshot archives.

    The solver runs continuously — spin-up, then the training segment,
    then the test segment — so the test data is a genuinely later
    period of the same dynamical system, mirroring the 2011/2012 split.

    Parameters
    ----------
    out_dir: directory to hold ``train/``, ``test/``, ``normalizer.json``.
    train_days, test_days: segment lengths (paper: one year each; the
        default 8+4 days keeps CPU runtime modest while spanning many
        tidal cycles).
    force: regenerate even if archives already exist.
    """
    out = Path(out_dir)
    bundle = ArchiveBundle(
        root=out,
        train=out / "train",
        test=out / "test",
        normalizer=out / "normalizer.json",
        ocean_config=ocean_config or OceanConfig(),
    )
    marker = out / "archives.json"
    if marker.exists() and not force:
        return bundle

    cfg = bundle.ocean_config
    model = RomsLikeModel(cfg)
    interval = cfg.snapshot_interval

    state = model.spinup(spinup_days * DAY)

    n_train = int(round(train_days * DAY / interval))
    snaps, state = model.simulate(state, n_train)
    train_store = SnapshotStore(bundle.train)
    train_store.write(snaps, interval, dtype=dtype)

    normalizer = Normalizer.fit_from_store(train_store)
    normalizer.save(bundle.normalizer)

    n_test = int(round(test_days * DAY / interval))
    snaps, state = model.simulate(state, n_test)
    test_store = SnapshotStore(bundle.test)
    test_store.write(snaps, interval, dtype=dtype)

    marker.write_text(json.dumps({
        "train_days": train_days,
        "test_days": test_days,
        "spinup_days": spinup_days,
        "interval_s": interval,
        "mesh": [cfg.ny, cfg.nx, cfg.nz],
    }))
    return bundle


def resample_store(src: SnapshotStore, dst_root: Path | str,
                   every: int = 24) -> SnapshotStore:
    """Subsample an archive to a coarser interval (12-day model data).

    Copies every ``every``-th snapshot into a new store whose manifest
    interval is scaled accordingly.
    """
    meta = src.meta
    dst = SnapshotStore(dst_root)
    dst.root.mkdir(parents=True, exist_ok=True)
    indices = list(range(0, meta.n_snapshots, every))
    for new_idx, old_idx in enumerate(indices):
        for var in VARIABLES:
            arr = src.read_var(var, old_idx)
            np.save(dst.root / f"{var}_{new_idx:06d}.npy", arr)
            dst.bytes_written += arr.nbytes
    new_meta = {
        "n_snapshots": len(indices),
        "interval_s": meta.interval_s * every,
        "mesh": list(meta.mesh),
        "dtype": meta.dtype,
        "t0": meta.t0,
    }
    (dst.root / "manifest.json").write_text(json.dumps(new_meta))
    return dst
