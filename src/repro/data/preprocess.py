"""Preprocessing: C-grid interpolation, mesh padding, precision, scaling.

Reproduces the paper's §III-B pipeline step by step:

1. *linear interpolation to cell centres* — ROMS stores u/v on cell
   faces; neural nets want co-located variables;
2. *zero-padding* — 898×598 → 900×600 so patches tile evenly;
3. *FP64 → FP16 conversion* — halves storage and bandwidth;
4. *z-score normalisation* — per-variable statistics from the training
   year only.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "faces_to_centers_u",
    "faces_to_centers_v",
    "pad_mesh",
    "unpad_mesh",
    "padded_shape",
    "Normalizer",
]


def faces_to_centers_u(u_faces: np.ndarray) -> np.ndarray:
    """Linear interpolation of u from (H, W+1) faces to (H, W) centres."""
    return 0.5 * (u_faces[..., :-1] + u_faces[..., 1:])


def faces_to_centers_v(v_faces: np.ndarray) -> np.ndarray:
    """Linear interpolation of v from (H+1, W) faces to (H, W) centres."""
    return 0.5 * (v_faces[..., :-1, :] + v_faces[..., 1:, :])


def padded_shape(h: int, w: int, multiple_h: int, multiple_w: int
                 ) -> Tuple[int, int]:
    """Smallest (H', W') ≥ (h, w) divisible by the patch multiples."""
    ph = (h + multiple_h - 1) // multiple_h * multiple_h
    pw = (w + multiple_w - 1) // multiple_w * multiple_w
    return ph, pw


def pad_mesh(field: np.ndarray, target_h: int, target_w: int,
             axes: Tuple[int, int] = (0, 1)) -> np.ndarray:
    """Zero-pad the (H, W) axes to the target.

    Padding is appended on the high side, like the paper's 898×598 →
    900×600 adjustment.  ``axes`` selects which axes are (H, W) — the
    default keeps the historical leading-axes behaviour; batched
    layouts pass e.g. ``axes=(2, 3)`` for (N, T, H, W, …) fields.
    """
    ah, aw = axes
    h, w = field.shape[ah], field.shape[aw]
    if target_h < h or target_w < w:
        raise ValueError(
            f"target ({target_h}, {target_w}) smaller than field ({h}, {w})")
    pad = [(0, 0)] * field.ndim
    pad[ah] = (0, target_h - h)
    pad[aw] = (0, target_w - w)
    return np.pad(field, pad)


def unpad_mesh(field: np.ndarray, orig_h: int, orig_w: int) -> np.ndarray:
    """Crop a padded field back to the original (H, W)."""
    return field[:orig_h, :orig_w, ...]


@dataclass
class Normalizer:
    """Per-variable z-score normalisation.

    Statistics are computed once from the training archive (the paper's
    2011 data) and reused verbatim for validation/test, so there is no
    statistics leakage across years.
    """

    mean: Dict[str, float]
    std: Dict[str, float]

    EPS = 1e-8

    @staticmethod
    def fit(fields: Dict[str, np.ndarray]) -> "Normalizer":
        """Fit from a dict of variable name → array (any shape)."""
        mean = {k: float(np.mean(v)) for k, v in fields.items()}
        std = {k: float(np.std(v)) for k, v in fields.items()}
        return Normalizer(mean, std)

    @staticmethod
    def fit_from_store(store, indices: Optional[Sequence[int]] = None
                       ) -> "Normalizer":
        """Streaming fit over store snapshots (two-pass Welford-free).

        Uses the sum/sum-of-squares accumulation; adequate because the
        fields are O(1) in magnitude.
        """
        from .store import VARIABLES
        idxs = list(indices) if indices is not None else list(range(len(store)))
        acc = {v: [0.0, 0.0, 0] for v in VARIABLES}  # sum, sumsq, count
        for i in idxs:
            snap = store.read_snapshot(i)
            for v, arr in snap.items():
                a = arr.astype(np.float64)
                acc[v][0] += float(a.sum())
                acc[v][1] += float((a * a).sum())
                acc[v][2] += a.size
        mean = {v: s / n for v, (s, sq, n) in acc.items()}
        std = {
            v: float(np.sqrt(max(sq / n - (s / n) ** 2, 0.0)))
            for v, (s, sq, n) in acc.items()
        }
        return Normalizer(mean, std)

    def normalize(self, var: str, x: np.ndarray) -> np.ndarray:
        return (x - self.mean[var]) / (self.std[var] + self.EPS)

    def denormalize(self, var: str, x: np.ndarray) -> np.ndarray:
        return x * (self.std[var] + self.EPS) + self.mean[var]

    # ------------------------------------------------------------------
    def save(self, path: Path | str) -> None:
        Path(path).write_text(json.dumps({"mean": self.mean, "std": self.std}))

    @staticmethod
    def load(path: Path | str) -> "Normalizer":
        d = json.loads(Path(path).read_text())
        return Normalizer(d["mean"], d["std"])
