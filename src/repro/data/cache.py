"""OS page-cache simulation for snapshot archives (paper §III-D).

The paper's first I/O optimisation "leverag[es] OS-level caching":
after a first epoch of SSD reads, re-read snapshots are served from the
page cache at RAM speed, and prefetch workers hide the remainder.
:class:`CachedStore` reproduces that behaviour measurably: an LRU cache
with a byte capacity fronts a :class:`~repro.data.store.SnapshotStore`,
counting hits/misses and modelling effective staging time — the numbers
behind the ``cache_hit_fraction`` parameter of the Fig. 9 pipeline
model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional

import numpy as np

from .store import SnapshotStore, VARIABLES

__all__ = ["CacheStats", "CachedStore", "LruBytes"]


class LruBytes:
    """Byte-capacity LRU mapping: the eviction core of every cache here.

    Both the page-cache simulation (:class:`CachedStore`) and the
    serving result cache (:class:`repro.serve.cache.ForecastCache`)
    need the same mechanics — recency refresh on hit, eviction of the
    least-recently-used entries until a new value fits, bypass of
    values larger than the whole cache.  This class owns exactly that;
    hit/miss accounting stays with the callers, whose stats mean
    different things (bytes from disk vs recomputed forecasts).

    Parameters
    ----------
    capacity_bytes: total byte budget.
    size_of: value → size in bytes (defaults to ``value.nbytes``).
    """

    def __init__(self, capacity_bytes: int,
                 size_of: Optional[Callable[[Any], int]] = None):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity_bytes)
        self._size_of = size_of or (lambda v: v.nbytes)
        self._items: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._used = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        if key not in self._items:
            return None
        self._items.move_to_end(key)
        return self._items[key]

    def put(self, key: Hashable, value: Any) -> int:
        """Insert ``value``; returns how many entries were evicted.

        A value larger than the whole cache is not stored (and evicts
        nothing) — one oversized read must not flush the cache.
        """
        nbytes = self._size_of(value)
        if nbytes > self.capacity:
            return 0
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= self._size_of(old)
        evictions = 0
        while self._used + nbytes > self.capacity and self._items:
            _, evicted = self._items.popitem(last=False)
            self._used -= self._size_of(evicted)
            evictions += 1
        self._items[key] = value
        self._used += nbytes
        return evictions

    def clear(self) -> None:
        self._items.clear()
        self._used = 0


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache."""

    hits: int = 0
    misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_disk: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def effective_load_seconds(self, disk_bandwidth: float,
                               ram_bandwidth: float) -> float:
        """Modelled staging time for the recorded traffic mix."""
        return (self.bytes_from_disk / disk_bandwidth
                + self.bytes_from_cache / ram_bandwidth)


class CachedStore:
    """LRU page-cache wrapper over a snapshot store.

    Parameters
    ----------
    store: backing archive.
    capacity_bytes: cache size.  The paper's inference node has 250 GB
        of RAM against a 2.6 TB archive (≈10% residency); at bench scale
        the ratio is configurable.
    """

    def __init__(self, store: SnapshotStore, capacity_bytes: int):
        self.store = store
        self._cache = LruBytes(capacity_bytes)
        self.capacity = self._cache.capacity
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    @property
    def meta(self):
        return self.store.meta

    def read_var(self, var: str, idx: int) -> np.ndarray:
        key = (var, idx)
        arr = self._cache.get(key)
        if arr is not None:
            self.stats.hits += 1
            self.stats.bytes_from_cache += arr.nbytes
            return arr
        arr = self.store.read_var(var, idx)
        self.stats.misses += 1
        self.stats.bytes_from_disk += arr.nbytes
        self.stats.evictions += self._cache.put(key, arr)
        return arr

    def read_snapshot(self, idx: int) -> Dict[str, np.ndarray]:
        return {var: self.read_var(var, idx) for var in VARIABLES}

    def read_window(self, start: int, length: int) -> Dict[str, np.ndarray]:
        if start < 0 or start + length > len(self):
            raise IndexError(
                f"window [{start}, {start + length}) out of range")
        return {
            var: np.stack([self.read_var(var, start + k)
                           for k in range(length)], axis=0)
            for var in VARIABLES
        }

    # ------------------------------------------------------------------
    def clear(self) -> None:
        self._cache.clear()

    @property
    def resident_bytes(self) -> int:
        return self._cache.used_bytes
