"""OS page-cache simulation for snapshot archives (paper §III-D).

The paper's first I/O optimisation "leverag[es] OS-level caching":
after a first epoch of SSD reads, re-read snapshots are served from the
page cache at RAM speed, and prefetch workers hide the remainder.
:class:`CachedStore` reproduces that behaviour measurably: an LRU cache
with a byte capacity fronts a :class:`~repro.data.store.SnapshotStore`,
counting hits/misses and modelling effective staging time — the numbers
behind the ``cache_hit_fraction`` parameter of the Fig. 9 pipeline
model.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .store import SnapshotStore, VARIABLES

__all__ = ["CacheStats", "CachedStore"]


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache."""

    hits: int = 0
    misses: int = 0
    bytes_from_cache: int = 0
    bytes_from_disk: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def effective_load_seconds(self, disk_bandwidth: float,
                               ram_bandwidth: float) -> float:
        """Modelled staging time for the recorded traffic mix."""
        return (self.bytes_from_disk / disk_bandwidth
                + self.bytes_from_cache / ram_bandwidth)


class CachedStore:
    """LRU page-cache wrapper over a snapshot store.

    Parameters
    ----------
    store: backing archive.
    capacity_bytes: cache size.  The paper's inference node has 250 GB
        of RAM against a 2.6 TB archive (≈10% residency); at bench scale
        the ratio is configurable.
    """

    def __init__(self, store: SnapshotStore, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.store = store
        self.capacity = int(capacity_bytes)
        self.stats = CacheStats()
        self._cache: "OrderedDict[Tuple[str, int], np.ndarray]" = \
            OrderedDict()
        self._used = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    @property
    def meta(self):
        return self.store.meta

    def read_var(self, var: str, idx: int) -> np.ndarray:
        key = (var, idx)
        if key in self._cache:
            self._cache.move_to_end(key)
            arr = self._cache[key]
            self.stats.hits += 1
            self.stats.bytes_from_cache += arr.nbytes
            return arr
        arr = self.store.read_var(var, idx)
        self.stats.misses += 1
        self.stats.bytes_from_disk += arr.nbytes
        self._insert(key, arr)
        return arr

    def read_snapshot(self, idx: int) -> Dict[str, np.ndarray]:
        return {var: self.read_var(var, idx) for var in VARIABLES}

    def read_window(self, start: int, length: int) -> Dict[str, np.ndarray]:
        if start < 0 or start + length > len(self):
            raise IndexError(
                f"window [{start}, {start + length}) out of range")
        return {
            var: np.stack([self.read_var(var, start + k)
                           for k in range(length)], axis=0)
            for var in VARIABLES
        }

    # ------------------------------------------------------------------
    def _insert(self, key: Tuple[str, int], arr: np.ndarray) -> None:
        if arr.nbytes > self.capacity:
            return  # larger than the whole cache: bypass
        while self._used + arr.nbytes > self.capacity and self._cache:
            _, evicted = self._cache.popitem(last=False)
            self._used -= evicted.nbytes
            self.stats.evictions += 1
        self._cache[key] = arr
        self._used += arr.nbytes

    def clear(self) -> None:
        self._cache.clear()
        self._used = 0

    @property
    def resident_bytes(self) -> int:
        return self._used
