"""Batching data loader with worker prefetch (paper §III-D).

The paper hides SSD→RAM latency behind computation using PyTorch
DataLoader workers with a prefetch factor, pinned host memory and
non-blocking device copies.  This loader reproduces the *mechanism*
(thread workers prefetching batches ahead of consumption) and records
the staging metadata (pin_memory, prefetch depth) that the HPC pipeline
model uses to reproduce Fig. 9's ablation.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from .dataset import EpisodeSample, SlidingWindowDataset

__all__ = ["Batch", "DataLoader"]


@dataclass
class Batch:
    """A stacked mini-batch of episodes."""

    x3d: np.ndarray   # (B, 3, H, W, D, T)
    x2d: np.ndarray   # (B, 1, H, W, T)
    y3d: np.ndarray
    y2d: np.ndarray
    starts: List[int]

    @property
    def batch_size(self) -> int:
        return self.x3d.shape[0]

    def nbytes(self) -> int:
        return (self.x3d.nbytes + self.x2d.nbytes
                + self.y3d.nbytes + self.y2d.nbytes)


def _collate(samples: Sequence[EpisodeSample]) -> Batch:
    return Batch(
        x3d=np.stack([s.x3d for s in samples]),
        x2d=np.stack([s.x2d for s in samples]),
        y3d=np.stack([s.y3d for s in samples]),
        y2d=np.stack([s.y2d for s in samples]),
        starts=[s.start for s in samples],
    )


class DataLoader:
    """Iterate a dataset in shuffled mini-batches with prefetching.

    Parameters
    ----------
    dataset: episode source.
    batch_size: episodes per batch (the paper trains at 2/GPU with
        activation checkpointing).
    shuffle: reshuffle each epoch (seeded, reproducible).
    num_workers: prefetch worker threads; 0 = synchronous.
    prefetch_factor: batches staged ahead per worker.
    pin_memory: recorded for the performance model; host staging
        semantics are identical either way in this NumPy engine.
    drop_last: drop the final ragged batch.
    """

    def __init__(self, dataset: SlidingWindowDataset, batch_size: int = 1,
                 shuffle: bool = True, num_workers: int = 0,
                 prefetch_factor: int = 2, pin_memory: bool = False,
                 drop_last: bool = False, seed: int = 0):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.num_workers = num_workers
        self.prefetch_factor = prefetch_factor
        self.pin_memory = pin_memory
        self.drop_last = drop_last
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _index_batches(self) -> List[List[int]]:
        idx = np.arange(len(self.dataset))
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self._epoch)
            rng.shuffle(idx)
        batches = [
            idx[i:i + self.batch_size].tolist()
            for i in range(0, len(idx), self.batch_size)
        ]
        if self.drop_last and batches and len(batches[-1]) < self.batch_size:
            batches.pop()
        return batches

    def __iter__(self) -> Iterator[Batch]:
        batches = self._index_batches()
        self._epoch += 1
        if self.num_workers == 0:
            for b in batches:
                yield _collate([self.dataset[i] for i in b])
            return
        yield from self._prefetch_iter(batches)

    # ------------------------------------------------------------------
    def _prefetch_iter(self, batches: List[List[int]]) -> Iterator[Batch]:
        """Thread-backed producer/consumer with bounded lookahead."""
        depth = max(1, self.num_workers * self.prefetch_factor)
        q: "queue.Queue" = queue.Queue(maxsize=depth)
        stop = threading.Event()

        def producer() -> None:
            try:
                for b in batches:
                    if stop.is_set():
                        return
                    q.put(_collate([self.dataset[i] for i in b]))
            except Exception as exc:  # surface worker errors to consumer
                q.put(exc)
            finally:
                q.put(None)

        worker = threading.Thread(target=producer, daemon=True)
        worker.start()
        try:
            while True:
                item = q.get()
                if item is None:
                    break
                if isinstance(item, Exception):
                    raise item
                yield item
        finally:
            stop.set()
            # drain so the producer can observe the stop flag promptly
            while not q.empty():
                try:
                    q.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=5.0)
