"""Data pipeline: archives, preprocessing, episodes, loading.

Reproduces the paper's §III-B/§III-D data path: solver snapshots →
FP16 shards on disk → centre interpolation + padding + z-score →
sliding-window episodes → prefetching batched loader.
"""

from .store import SnapshotStore, StoreMeta, VARIABLES
from .preprocess import (
    Normalizer,
    faces_to_centers_u,
    faces_to_centers_v,
    pad_mesh,
    padded_shape,
    unpad_mesh,
)
from .dataset import (
    EpisodeSample,
    SlidingWindowDataset,
    assemble_episode_input,
    assemble_episode_input_batch,
)
from .loader import Batch, DataLoader
from .builder import ArchiveBundle, build_archives, resample_store
from .cache import CachedStore, CacheStats, LruBytes

__all__ = [
    "SnapshotStore",
    "StoreMeta",
    "VARIABLES",
    "Normalizer",
    "faces_to_centers_u",
    "faces_to_centers_v",
    "pad_mesh",
    "unpad_mesh",
    "padded_shape",
    "EpisodeSample",
    "SlidingWindowDataset",
    "assemble_episode_input",
    "assemble_episode_input_batch",
    "Batch",
    "DataLoader",
    "ArchiveBundle",
    "build_archives",
    "resample_store",
    "CachedStore",
    "CacheStats",
    "LruBytes",
]
