"""Scenario factory: named basins over the ocean layer.

The paper's surge-forecasting target is inherently multi-scenario —
different basins, storm tracks, and tidal regimes — but a
:class:`~repro.serve.scheduler.MicroBatchScheduler` coalesces only
requests that share one mesh.  The factory resolves that tension with
**wire-mesh staging**: every basin keeps its own *native* geometry
(heterogeneous ``(ny, nx, nz)`` grid, bathymetry, sigma layers, tides,
storm track), and :meth:`Basin.window` embeds the synthesised fields
into a common serving mesh (zero beyond the basin extent), so requests
from all basins batch together on one engine.

Everything is a pure function of ``(seed, basin, time)``:

* basin construction derives all randomness (bathymetry noise,
  constituent amplitude/phase jitter) from
  ``np.random.default_rng((seed, index))`` — same seed, same basins,
  bitwise;
* window synthesis is closed-form in ``t`` (harmonic tide +
  inverse-barometer surge + Holland wind-driven currents distributed
  over the sigma layers by the log-layer profile) — no RNG, so windows
  are bitwise-reproducible regardless of call order.

:class:`RollingForecast` is the streaming mode: a basin episode whose
*current* window is content-identical between :meth:`~RollingForecast.advance`
calls, so consecutive requests for one basin key hit
:class:`~repro.serve.pool.KeyAffinityRouter` locality *and* the
:class:`~repro.serve.cache.ForecastCache`; ``advance`` slides the
window one model step, optionally warm-starting from a forecast tail
(observation nudging), which stays deterministic because the engine is.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..ocean.bathymetry import (BathymetryConfig, synth_estuary_bathymetry,
                                wet_mask)
from ..ocean.grid import make_charlotte_grid
from ..ocean.sigma import SigmaLayers, VerticalStructure
from ..ocean.storm import P_AMBIENT, RHO_WATER, ParametricCyclone
from ..ocean.swe import GRAVITY
from ..ocean.tides import GULF_CONSTITUENTS, TidalConstituent, TidalForcing
from ..workflow.engine import FieldWindow, ForecastResult

__all__ = ["BasinSpec", "Basin", "RollingForecast", "ScenarioFactory",
           "DEFAULT_BASINS"]

#: fraction of the 10 m wind speed carried by the depth-averaged
#: current (classic wind-driven-drift rule of thumb)
WIND_DRIFT_FRACTION = 0.03


@dataclass(frozen=True)
class BasinSpec:
    """Static description of one named basin.

    ``ny``/``nx``/``nz`` are the basin's *native* mesh — heterogeneous
    across basins, each bounded by the factory's wire mesh.  ``weight``
    is the basin's tenant share of offered traffic (read by
    :class:`~repro.scenario.traffic.TrafficModel`).
    """

    name: str
    ny: int
    nx: int
    nz: int
    length_x: float = 14_000.0
    length_y: float = 15_000.0
    tide_scale: float = 1.0           # constituent amplitude multiplier
    storm_wind: float = 30.0          # peak gradient wind [m/s]
    storm_track: Tuple[float, float, float, float] = (-0.2, 0.5, 6.0, 1.0)
    #: (x0_frac, y0_frac, vx, vy): landfall start as domain fractions +
    #: translation speed [m/s]
    weight: float = 1.0


#: Four Gulf-coast-flavoured basins with genuinely different native
#: meshes, storm tracks, and tidal regimes.  Every native mesh fits the
#: default wire mesh (15, 14, 6).
DEFAULT_BASINS: Tuple[BasinSpec, ...] = (
    BasinSpec("punta-gorda", ny=15, nx=14, nz=6, weight=3.0,
              storm_track=(-0.2, 0.5, 6.0, 1.0)),
    BasinSpec("boca-grande", ny=12, nx=10, nz=4, length_x=10_000.0,
              length_y=12_000.0, tide_scale=1.4, storm_wind=38.0,
              weight=2.0, storm_track=(-0.3, 0.3, 8.0, 2.0)),
    BasinSpec("san-carlos", ny=10, nx=12, nz=5, length_x=12_000.0,
              length_y=10_000.0, tide_scale=0.8, storm_wind=24.0,
              weight=1.5, storm_track=(-0.1, 0.7, 4.0, -1.0)),
    BasinSpec("matlacha", ny=8, nx=8, nz=3, length_x=8_000.0,
              length_y=8_000.0, tide_scale=0.6, storm_wind=18.0,
              weight=1.0, storm_track=(-0.4, 0.4, 10.0, 0.0)),
)


class Basin:
    """One realised basin: grid, bathymetry, tides, storm, and the
    closed-form window synthesiser.

    Built by :class:`ScenarioFactory`; all randomness is drawn at
    construction from the factory seed and the basin's index, after
    which :meth:`window` is a deterministic function of time.
    """

    def __init__(self, spec: BasinSpec, seed: int, index: int,
                 time_steps: int, wire_mesh: Tuple[int, int, int],
                 dt_seconds: float):
        self.spec = spec
        self.time_steps = time_steps
        self.wire_mesh = wire_mesh
        self.dt_seconds = dt_seconds
        rng = np.random.default_rng((seed, index))

        self.grid = make_charlotte_grid(spec.nx, spec.ny,
                                        spec.length_x, spec.length_y)
        bathy = replace(BathymetryConfig(),
                        seed=int(rng.integers(2 ** 31 - 1)),
                        shelf_depth=float(rng.uniform(12.0, 24.0)))
        self.h = synth_estuary_bathymetry(self.grid, bathy)
        self.wet = wet_mask(self.h)
        self.layers = SigmaLayers(spec.nz)
        self.vertical = VerticalStructure(self.grid, self.layers)

        # per-basin tidal regime: jittered constituent amplitudes and
        # phases around the Gulf set, scaled by the spec
        constituents = tuple(
            TidalConstituent(
                c.name, c.period_s,
                c.amplitude_m * spec.tide_scale
                * float(rng.uniform(0.85, 1.15)),
                c.phase_rad + float(rng.uniform(-0.5, 0.5)))
            for c in GULF_CONSTITUENTS)
        self.tides = TidalForcing(constituents)

        x0f, y0f, vx, vy = spec.storm_track
        self.storm = ParametricCyclone(
            x0=x0f * spec.length_x, y0=y0f * spec.length_y,
            vx=vx, vy=vy, max_wind=spec.storm_wind,
            radius_max_wind=0.4 * max(spec.length_x, spec.length_y))

        # fixed positive reference depth for the log-layer profile
        self._depth_floor = np.maximum(self.h, 0.5)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def native_mesh(self) -> Tuple[int, int, int]:
        """(ny, nx, nz) — the basin's own resolution."""
        return (self.spec.ny, self.spec.nx, self.spec.nz)

    # ------------------------------------------------------------------
    def _snapshot(self, t: float):
        """Closed-form native fields at one instant.

        Returns ``(u3, v3, w3, zeta)`` with the 3-D fields shaped
        ``(nz, ny, nx)`` (bottom layer first) and ``zeta`` ``(ny, nx)``.
        """
        grid = self.grid
        tide = self.tides.elevation(t, grid.y_axis.centers)[:, None]
        surge = (P_AMBIENT - self.storm.pressure(grid, t)) \
            / (RHO_WATER * GRAVITY)
        zeta = (tide + surge) * self.wet

        wu, wv = self.storm.wind(grid, t)
        ubar = WIND_DRIFT_FRACTION * wu * self.wet
        vbar = WIND_DRIFT_FRACTION * wv * self.wet
        depth = np.maximum(self._depth_floor + zeta, 0.1)
        u3, v3 = self.vertical.horizontal(ubar, vbar, depth)
        w3 = self.vertical.vertical(u3, v3, depth)
        return u3, v3, w3, zeta

    def window(self, t0: float) -> FieldWindow:
        """Synthesise the ``time_steps``-long episode starting at
        ``t0`` [s], staged onto the wire mesh (zero beyond the basin's
        native extent)."""
        T = self.time_steps
        H, W, D = self.wire_mesh
        ny, nx, nz = self.native_mesh
        u = np.zeros((T, H, W, D))
        v = np.zeros((T, H, W, D))
        w = np.zeros((T, H, W, D))
        z = np.zeros((T, H, W))
        for k in range(T):
            u3, v3, w3, zeta = self._snapshot(t0 + k * self.dt_seconds)
            u[k, :ny, :nx, :nz] = np.transpose(u3, (1, 2, 0))
            v[k, :ny, :nx, :nz] = np.transpose(v3, (1, 2, 0))
            w[k, :ny, :nx, :nz] = np.transpose(w3, (1, 2, 0))
            z[k, :ny, :nx] = zeta
        return FieldWindow(u, v, w, z)


class RollingForecast:
    """A basin episode advancing with streaming observations.

    ``current`` stays content-identical between :meth:`advance` calls —
    repeated submissions of it are exact duplicates, which is what
    gives the serving stack its cache/dedup hits and (keyed by the
    basin name) its router affinity.  ``advance`` slides the episode
    one model step; when given the previous forecast it warm-starts by
    nudging the new first snapshot halfway toward the forecast tail —
    a deterministic blend, so replays stay bitwise.
    """

    def __init__(self, basin: Basin, start_t: float = 0.0):
        self.basin = basin
        self.t = float(start_t)
        self.steps = 0
        self._window = basin.window(self.t)

    @property
    def current(self) -> FieldWindow:
        """The episode's current request window (stable between
        advances; do not mutate)."""
        return self._window

    def advance(self, forecast: Optional[object] = None) -> FieldWindow:
        """Slide one model step (``basin.dt_seconds``) and return the
        new current window.

        ``forecast`` may be the previous window's
        :class:`~repro.workflow.engine.ForecastResult` (or bare
        :class:`~repro.workflow.engine.FieldWindow`); its last snapshot
        is blended 50/50 into the fresh observation at the new start
        time.  ``None`` means pure observations (open-loop replay).
        """
        self.t += self.basin.dt_seconds
        self.steps += 1
        nxt = self.basin.window(self.t)
        if forecast is not None:
            fields = forecast.fields if isinstance(forecast, ForecastResult) \
                else forecast
            for name in ("u3", "v3", "w3", "zeta"):
                obs = getattr(nxt, name)
                obs[0] = 0.5 * (obs[0] + getattr(fields, name)[-1])
        self._window = nxt
        return nxt


class ScenarioFactory:
    """Generate the named-basin set from a single seed.

    Parameters
    ----------
    seed: master seed; every basin derives its randomness from
        ``(seed, basin_index)``, so one integer pins the whole
        scenario set bitwise.
    basins: the :class:`BasinSpec` set (default :data:`DEFAULT_BASINS`).
    time_steps: episode length — must match the serving engine's
        ``time_steps``.
    wire_mesh: the common serving mesh ``(H, W, D)`` every basin's
        windows are staged onto; each native mesh must fit inside it.
    dt_seconds: model step between episode snapshots.
    """

    def __init__(self, seed: int = 0,
                 basins: Sequence[BasinSpec] = DEFAULT_BASINS,
                 time_steps: int = 4,
                 wire_mesh: Tuple[int, int, int] = (15, 14, 6),
                 dt_seconds: float = 600.0):
        names = [s.name for s in basins]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate basin names: {names}")
        H, W, D = wire_mesh
        for s in basins:
            if s.ny > H or s.nx > W or s.nz > D:
                raise ValueError(
                    f"basin {s.name!r} native mesh {(s.ny, s.nx, s.nz)} "
                    f"exceeds wire mesh {wire_mesh}")
        self.seed = seed
        self.time_steps = time_steps
        self.wire_mesh = tuple(wire_mesh)
        self.dt_seconds = dt_seconds
        self.specs = tuple(basins)
        self.basins: Dict[str, Basin] = {
            s.name: Basin(s, seed, i, time_steps, self.wire_mesh,
                          dt_seconds)
            for i, s in enumerate(basins)}

    @property
    def basin_names(self) -> Tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    def basin(self, name: str) -> Basin:
        return self.basins[name]

    def rolling(self, name: str, start_t: float = 0.0) -> RollingForecast:
        """Open a rolling-forecast episode for one basin."""
        return RollingForecast(self.basins[name], start_t)
