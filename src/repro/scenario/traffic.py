"""Open-loop traffic simulation with a replayable recorded trace.

Arrival model: each basin offers a non-homogeneous Poisson stream with
intensity

    λ_b(t) = base_rate · weight_b · diurnal_b(t) · spike_b(t)

— a Poisson base scaled by the basin's tenant weight, a sinusoidal
diurnal modulation, and a Gaussian storm-spike burst.  Streams are
sampled by thinning against the per-basin peak intensity, each basin
from its own counter-based substream ``default_rng((seed, index))``,
so the trace is a pure function of ``(model, duration, seed)`` and is
independent of basin iteration order.

The product is a :class:`TrafficTrace`: a header plus a time-sorted
list of :class:`TrafficEvent`\\ s (arrival time, basin key, request
kind).  Saved as JSONL it round-trips **bitwise** — Python's ``json``
emits ``repr(float)`` and every finite double survives
``float(repr(x))`` exactly — so *same seed ⇒ same trace ⇒ same request
accounting*, whether the trace is regenerated or reloaded from disk.

Event kinds:

* ``"current"`` — request the basin's rolling episode's current
  window (an exact duplicate between advances: exercises cache, dedup,
  and key-affinity locality);
* ``"unique"`` — request a fresh window at the event's ``param`` time
  offset (cache-busting: exercises batching and admission control);
* ``"advance"`` — not a request: the harness slides the basin's
  rolling episode one model step (deterministic cadence).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .factory import ScenarioFactory

__all__ = ["DiurnalCycle", "StormSpike", "BasinLoad", "TrafficModel",
           "TrafficEvent", "TrafficTrace", "simulate_trace"]

TRACE_VERSION = 1

#: time offset window (seconds) unique-window requests draw from —
#: far from the rolling episodes so the windows never collide
UNIQUE_T_LO = 1.0e5
UNIQUE_T_HI = 1.0e6


@dataclass(frozen=True)
class DiurnalCycle:
    """Sinusoidal daily modulation: ``1 + a·sin(2πt/period + phase)``."""

    amplitude: float = 0.4
    period_s: float = 86_400.0
    phase_rad: float = 0.0

    def factor(self, t: float) -> float:
        return 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * t / self.period_s + self.phase_rad)

    @property
    def peak(self) -> float:
        return 1.0 + abs(self.amplitude)


@dataclass(frozen=True)
class StormSpike:
    """Gaussian burst: ``1 + A·exp(−(t−center)²/2σ²)`` — the traffic
    surge when a storm threatens the basin."""

    center_s: float
    width_s: float
    amplitude: float = 4.0

    def factor(self, t: float) -> float:
        z = (t - self.center_s) / self.width_s
        return 1.0 + self.amplitude * np.exp(-0.5 * z * z)

    @property
    def peak(self) -> float:
        return 1.0 + abs(self.amplitude)


@dataclass(frozen=True)
class BasinLoad:
    """One basin's composable arrival process."""

    basin: str
    weight: float = 1.0
    diurnal: Optional[DiurnalCycle] = None
    spike: Optional[StormSpike] = None

    def intensity(self, t: float, base_rate: float) -> float:
        lam = base_rate * self.weight
        if self.diurnal is not None:
            lam *= self.diurnal.factor(t)
        if self.spike is not None:
            lam *= self.spike.factor(t)
        return float(lam)

    def peak_intensity(self, base_rate: float) -> float:
        lam = base_rate * self.weight
        if self.diurnal is not None:
            lam *= self.diurnal.peak
        if self.spike is not None:
            lam *= self.spike.peak
        return float(lam)


@dataclass(frozen=True)
class TrafficModel:
    """The full multi-tenant arrival mix.

    ``unique_fraction`` of arrivals are cache-busting ``"unique"``
    requests; the rest hit the basin's rolling current window.
    ``advance_every_s > 0`` inserts deterministic ``"advance"`` events
    on that cadence per basin (the rolling-forecast stream).
    """

    loads: Tuple[BasinLoad, ...]
    base_rate: float = 20.0
    unique_fraction: float = 0.25
    advance_every_s: float = 0.0

    @classmethod
    def from_factory(cls, factory: ScenarioFactory,
                     base_rate: float = 20.0,
                     unique_fraction: float = 0.25,
                     advance_every_s: float = 0.0,
                     diurnal: Optional[DiurnalCycle] = None,
                     spikes: Optional[Dict[str, StormSpike]] = None
                     ) -> "TrafficModel":
        """Tenant mix straight from the basin specs' weights."""
        spikes = spikes or {}
        loads = tuple(
            BasinLoad(s.name, weight=s.weight, diurnal=diurnal,
                      spike=spikes.get(s.name))
            for s in factory.specs)
        return cls(loads, base_rate=base_rate,
                   unique_fraction=unique_fraction,
                   advance_every_s=advance_every_s)


@dataclass(frozen=True)
class TrafficEvent:
    """One trace record.  ``param`` is the unique-window time offset
    for ``kind == "unique"`` and 0.0 otherwise."""

    t: float
    basin: str
    kind: str            # "current" | "unique" | "advance"
    param: float = 0.0

    @property
    def is_request(self) -> bool:
        return self.kind != "advance"


@dataclass
class TrafficTrace:
    """A recorded arrival sequence plus the header that produced it."""

    seed: int
    duration_s: float
    base_rate: float
    events: List[TrafficEvent] = field(default_factory=list)

    @property
    def n_requests(self) -> int:
        return sum(1 for e in self.events if e.is_request)

    def requests_by_basin(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            if e.is_request:
                out[e.basin] = out.get(e.basin, 0) + 1
        return out

    def arrival_times(self, basin: Optional[str] = None) -> np.ndarray:
        """Request arrival times, optionally for one basin."""
        return np.array([e.t for e in self.events if e.is_request
                         and (basin is None or e.basin == basin)])

    # -- persistence ----------------------------------------------------
    def save(self, path) -> None:
        """JSONL: one header line, then one line per event (floats as
        ``repr`` — reloads bitwise-identical)."""
        path = Path(path)
        with path.open("w") as fh:
            fh.write(json.dumps({
                "version": TRACE_VERSION, "seed": self.seed,
                "duration_s": self.duration_s,
                "base_rate": self.base_rate,
                "n_events": len(self.events)}) + "\n")
            for e in self.events:
                fh.write(json.dumps(asdict(e)) + "\n")

    @classmethod
    def load(cls, path) -> "TrafficTrace":
        path = Path(path)
        with path.open() as fh:
            header = json.loads(fh.readline())
            if header.get("version") != TRACE_VERSION:
                raise ValueError(
                    f"unsupported trace version {header.get('version')!r}")
            events = [TrafficEvent(**json.loads(line))
                      for line in fh if line.strip()]
        if len(events) != header["n_events"]:
            raise ValueError(
                f"truncated trace: header says {header['n_events']} "
                f"events, file has {len(events)}")
        return cls(seed=header["seed"], duration_s=header["duration_s"],
                   base_rate=header["base_rate"], events=events)

    def __eq__(self, other) -> bool:
        if not isinstance(other, TrafficTrace):
            return NotImplemented
        return (self.seed == other.seed
                and self.duration_s == other.duration_s
                and self.base_rate == other.base_rate
                and self.events == other.events)


def simulate_trace(model: TrafficModel, duration_s: float,
                   seed: int = 0) -> TrafficTrace:
    """Sample the arrival mix into a recorded trace.

    Per-basin thinning against the basin's peak intensity, each basin
    on its own ``default_rng((seed, index))`` substream; the merged
    stream is time-sorted with a deterministic ``(t, basin_index,
    sequence)`` tie-break.  Same ``(model, duration_s, seed)`` ⇒
    bitwise-identical trace.
    """
    keyed: List[Tuple[float, int, int, TrafficEvent]] = []
    for idx, load in enumerate(model.loads):
        rng = np.random.default_rng((seed, idx))
        lam_max = load.peak_intensity(model.base_rate)
        if lam_max <= 0.0:
            continue
        t, seq = 0.0, 0
        while True:
            t += float(rng.exponential(1.0 / lam_max))
            if t >= duration_s:
                break
            accept = float(rng.uniform())
            unique = float(rng.uniform())
            param = float(rng.uniform(UNIQUE_T_LO, UNIQUE_T_HI))
            if accept * lam_max > load.intensity(t, model.base_rate):
                continue           # thinned; draws above keep the
                                   # stream aligned regardless of fate
            if unique < model.unique_fraction:
                event = TrafficEvent(t, load.basin, "unique", param)
            else:
                event = TrafficEvent(t, load.basin, "current")
            keyed.append((t, idx, seq, event))
            seq += 1
        if model.advance_every_s > 0.0:
            k = 1
            while k * model.advance_every_s < duration_s:
                ta = k * model.advance_every_s
                keyed.append((ta, idx, seq, TrafficEvent(
                    ta, load.basin, "advance")))
                seq += 1
                k += 1
    keyed.sort(key=lambda item: item[:3])
    return TrafficTrace(seed=seed, duration_s=float(duration_s),
                        base_rate=model.base_rate,
                        events=[item[3] for item in keyed])
