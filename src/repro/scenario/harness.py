"""Trace replay harness: feed a recorded trace through the serving
stack and account for every request exactly.

``replay_trace`` drives a :class:`~repro.serve.server.ForecastServer`
or a bare :class:`~repro.serve.pool.EngineWorkerPool` (thread or
process backend — the harness is backend-agnostic) with the events of
a :class:`~repro.scenario.traffic.TrafficTrace`, in two clock modes:

* ``"wall"`` — open-loop pacing: sleep to each event's arrival time
  (scaled by ``time_scale``) and submit.  Real concurrency, real
  ``max_wait`` coalescing, autoscalers tick — the benchmarking mode.
  ``time_scale=0`` degenerates to submit-as-fast-as-possible (the old
  step-function load shape).
* ``"virtual"`` — no sleeping: the target must be manual
  (``autostart=False``); events are submitted in trace order and the
  backlog is drained with an inline ``flush()`` every ``flush_every``
  requests.  Every scheduling quantum is deterministic, so two replays
  of one trace produce identical per-basin accounting — the test mode.

The result is a :class:`ScenarioReport` with per-basin offered /
engine-served / cache-or-dedup / shed counts, latency percentiles, and
the worker sets that served each basin (the affinity audit).  Its
invariant — checked by :meth:`ScenarioReport.check` — is **exact
accounting**: ``offered == served + cached + shed`` with zero lost and
zero double-served requests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from ..serve.pool import PoolSaturated
from .factory import ScenarioFactory, RollingForecast
from .traffic import TrafficTrace

__all__ = ["BasinReport", "ScenarioReport", "replay_trace"]


def _percentile(values: List[float], q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.array(values), q))


@dataclass
class BasinReport:
    """Per-basin request accounting and placement."""

    basin: str
    offered: int = 0         # request events submitted (or shed)
    served: int = 0          # completed on an engine (cache_hit False)
    cached: int = 0          # completed from cache or in-flight dedup
    shed: int = 0            # rejected by admission control
    workers: Set[int] = field(default_factory=set)
    #: worker ids that engine-served this basin (affinity audit)
    latencies: List[float] = field(default_factory=list)

    @property
    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    @property
    def hit_rate(self) -> float:
        done = self.served + self.cached
        return self.cached / done if done else 0.0

    @property
    def latency_p50_ms(self) -> float:
        return 1e3 * _percentile(self.latencies, 50.0)

    @property
    def latency_p95_ms(self) -> float:
        return 1e3 * _percentile(self.latencies, 95.0)


@dataclass
class ScenarioReport:
    """Whole-trace accounting: per-basin reports plus totals."""

    per_basin: Dict[str, BasinReport]
    elapsed_s: float = 0.0
    duplicate_request_ids: int = 0

    @property
    def offered(self) -> int:
        return sum(b.offered for b in self.per_basin.values())

    @property
    def served(self) -> int:
        return sum(b.served for b in self.per_basin.values())

    @property
    def cached(self) -> int:
        return sum(b.cached for b in self.per_basin.values())

    @property
    def shed(self) -> int:
        return sum(b.shed for b in self.per_basin.values())

    @property
    def lost(self) -> int:
        return self.offered - self.served - self.cached - self.shed

    def accounting(self) -> Dict[str, int]:
        return {"offered": self.offered, "served": self.served,
                "cached": self.cached, "shed": self.shed,
                "lost": self.lost,
                "duplicates": self.duplicate_request_ids}

    def check(self) -> None:
        """Raise unless every offered request is accounted for exactly
        once: ``offered == served + cached + shed``, no duplicates."""
        if self.lost != 0 or self.duplicate_request_ids != 0:
            raise AssertionError(
                f"request accounting violated: {self.accounting()}")

    def sustained_qps(self) -> float:
        done = self.served + self.cached
        return done / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _is_server(target) -> bool:
    # ForecastServer fronts a pool; a pool has no .pool
    return hasattr(target, "pool")


def replay_trace(trace: TrafficTrace, target, factory: ScenarioFactory,
                 mode: str = "wall", time_scale: float = 1.0,
                 flush_every: int = 8, timeout: float = 120.0,
                 shed_retry: float = 0.0,
                 responses: Optional[list] = None) -> ScenarioReport:
    """Feed every trace event through ``target`` and account exactly.

    Parameters
    ----------
    trace: the recorded arrival sequence.
    target: a :class:`~repro.serve.server.ForecastServer` or bare
        :class:`~repro.serve.pool.EngineWorkerPool` (either backend).
    factory: supplies the basins and rolling episodes the events name.
    mode: ``"wall"`` (paced, threaded) or ``"virtual"`` (manual
        target, inline flushes, deterministic).
    time_scale: wall mode only — real seconds per trace second
        (``0`` submits with no pacing, the degenerate step load).
    flush_every: virtual mode only — drain cadence in requests.
    shed_retry: wall mode only — when ``> 0``, a saturated submission
        backs off ``min(retry_after, shed_retry)`` seconds and retries
        until admitted (the closed-loop client: nothing sheds, the pool
        still registers every rejection as offered pressure).  ``0``
        counts the request shed, open-loop.
    responses: optional list; when given, every completed request
        appends ``(event, result)`` in trace order — the bitwise-replay
        audit trail.
    """
    if mode not in ("wall", "virtual"):
        raise ValueError(f"unknown mode {mode!r}")
    if shed_retry > 0.0 and mode != "wall":
        raise ValueError("shed_retry needs wall mode (virtual replays "
                         "must stay deterministic)")
    server = _is_server(target)
    rolls: Dict[str, RollingForecast] = {}
    reports = {name: BasinReport(name) for name in factory.basin_names}
    pending = []          # (event, future) in submission order
    start = time.monotonic()

    def roll(name: str) -> RollingForecast:
        if name not in rolls:
            rolls[name] = factory.rolling(name)
        return rolls[name]

    def drain() -> None:
        if hasattr(target, "flush"):
            target.flush()

    since_flush = 0
    for event in trace.events:
        report = reports[event.basin]
        if event.kind == "advance":
            roll(event.basin).advance()
            continue
        if event.kind == "unique":
            window = factory.basin(event.basin).window(event.param)
        else:
            window = roll(event.basin).current
        if mode == "wall" and time_scale > 0.0:
            due = start + event.t * time_scale
            delay = due - time.monotonic()
            if delay > 0:
                time.sleep(delay)
        report.offered += 1
        future = None
        while future is None:
            try:
                if server:
                    future = target.submit(window, route_key=event.basin)
                else:
                    future = target.submit(window, key=event.basin)
            except PoolSaturated as exc:
                if shed_retry <= 0.0:
                    break
                time.sleep(min(exc.retry_after, shed_retry))
        if future is None:
            report.shed += 1
            continue
        pending.append((event, future))
        if mode == "virtual":
            since_flush += 1
            if since_flush >= flush_every:
                drain()
                since_flush = 0
    if mode == "virtual":
        drain()

    for event, future in pending:
        result = future.result(timeout=timeout)
        report = reports[event.basin]
        if future.cache_hit:
            report.cached += 1
        else:
            report.served += 1
            if future.worker_id is not None:
                report.workers.add(future.worker_id)
        if future.latency_seconds is not None:
            report.latencies.append(future.latency_seconds)
        if responses is not None:
            responses.append((event, result))

    # request ids are per-scheduler counters: uniqueness is per
    # (worker, id) — a duplicate there means a double-served request
    ids = [(f.worker_id, f.request_id)
           for _, f in pending if not f.cache_hit]
    duplicates = len(ids) - len(set(ids))
    return ScenarioReport(per_basin=reports,
                          elapsed_s=time.monotonic() - start,
                          duplicate_request_ids=duplicates)
