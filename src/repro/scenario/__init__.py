"""Scenario factory and replayable traffic simulation.

Three layers, each usable alone:

* :mod:`~repro.scenario.factory` — named basins over the ocean layer
  (heterogeneous native meshes, sigma layers, tides, parametric storm
  tracks, all from one seed) staged onto a common serving wire mesh,
  plus the :class:`RollingForecast` streaming mode;
* :mod:`~repro.scenario.traffic` — composable arrival processes
  (Poisson base · diurnal · storm spike, per-basin tenant mix) sampled
  into a :class:`TrafficTrace` that saves/loads as JSONL and replays
  bitwise-identically;
* :mod:`~repro.scenario.harness` — :func:`replay_trace` feeds a trace
  through ``ForecastServer``/``EngineWorkerPool`` (thread or process
  backend, wall or virtual clock) and returns a
  :class:`ScenarioReport` with exact per-basin request accounting.
"""

from .factory import (Basin, BasinSpec, DEFAULT_BASINS, RollingForecast,
                      ScenarioFactory)
from .traffic import (BasinLoad, DiurnalCycle, StormSpike, TrafficEvent,
                      TrafficModel, TrafficTrace, simulate_trace)
from .harness import BasinReport, ScenarioReport, replay_trace

__all__ = [
    "BasinSpec",
    "Basin",
    "RollingForecast",
    "ScenarioFactory",
    "DEFAULT_BASINS",
    "DiurnalCycle",
    "StormSpike",
    "BasinLoad",
    "TrafficModel",
    "TrafficEvent",
    "TrafficTrace",
    "simulate_trace",
    "BasinReport",
    "ScenarioReport",
    "replay_trace",
]
