"""repro — reproduction of "Accelerate Coastal Ocean Circulation Model
with AI Surrogate" (Xu et al., IPDPS 2025; arXiv:2410.14952).

Subpackages
-----------
- :mod:`repro.tensor` — NumPy autograd engine (the PyTorch substitute).
- :mod:`repro.nn` — neural-network layers.
- :mod:`repro.swin` — the 4-D Swin Transformer surrogate (core contribution).
- :mod:`repro.ocean` — ROMS-like tidal circulation substrate.
- :mod:`repro.data` — archives, preprocessing, episode datasets, loaders.
- :mod:`repro.train` — optimisers, losses, trainer, checkpointing.
- :mod:`repro.physics` — water-mass-conservation verification.
- :mod:`repro.workflow` — dual-model forecasting + hybrid AI/ROMS loop.
- :mod:`repro.serve` — micro-batching scheduler, result cache, server.
- :mod:`repro.scenario` — basin scenario factory + replayable traffic.
- :mod:`repro.hpc` — platform simulation and performance models.
- :mod:`repro.eval` — accuracy metrics and report formatting.
"""

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "swin",
    "ocean",
    "data",
    "train",
    "physics",
    "workflow",
    "serve",
    "scenario",
    "hpc",
    "eval",
]
