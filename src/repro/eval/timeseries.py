"""Location time series and spatial-field comparison (Figs. 5–6).

The paper visualises (a) surface maps of u, v, ζ for ROMS vs surrogate
vs difference and (b) ζ time series at three estuary locations over a
12-day forecast.  Headless reproduction reports the underlying numbers:
extracted series, correlation/skill per location, and spatial-field
statistics of the difference maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..ocean.grid import CurvilinearGrid
from ..workflow.forecast import FieldWindow

__all__ = ["LocationSeries", "extract_series", "series_skill",
           "SpatialComparison", "compare_surface_fields",
           "PAPER_LOCATIONS"]

#: The three locations of the paper's Fig. 6 (lat, lon).
PAPER_LOCATIONS: Tuple[Tuple[float, float], ...] = (
    (26.35, -82.06),
    (26.49, -82.03),
    (26.72, -82.24),
)


@dataclass
class LocationSeries:
    """ζ series at one cell for reference and forecast."""

    lat: float
    lon: float
    cell: Tuple[int, int]
    reference: np.ndarray
    forecast: np.ndarray


def extract_series(grid: CurvilinearGrid, reference: FieldWindow,
                   forecast: FieldWindow,
                   locations: Sequence[Tuple[float, float]] = PAPER_LOCATIONS
                   ) -> List[LocationSeries]:
    """ζ time series at geographic locations (nearest wet cell)."""
    out = []
    for lat, lon in locations:
        j, i = grid.nearest_cell(lon, lat)
        out.append(LocationSeries(
            lat=lat, lon=lon, cell=(j, i),
            reference=reference.zeta[:, j, i].astype(np.float64),
            forecast=forecast.zeta[:, j, i].astype(np.float64),
        ))
    return out


def series_skill(series: LocationSeries) -> Dict[str, float]:
    """Agreement metrics for one location series.

    * ``rmse`` — root mean square error [m];
    * ``corr`` — Pearson correlation (phase agreement of the tide);
    * ``amp_ratio`` — forecast/reference std (amplitude agreement).
    """
    r, f = series.reference, series.forecast
    rmse = float(np.sqrt(np.mean((r - f) ** 2)))
    if np.std(r) > 0 and np.std(f) > 0:
        corr = float(np.corrcoef(r, f)[0, 1])
    else:
        corr = float("nan")
    amp = float(np.std(f) / np.std(r)) if np.std(r) > 0 else float("nan")
    return {"rmse": rmse, "corr": corr, "amp_ratio": amp}


@dataclass
class SpatialComparison:
    """Statistics of one surface-field comparison (Fig. 5 analogue)."""

    variable: str
    ref_min: float
    ref_max: float
    pred_min: float
    pred_max: float
    diff_mae: float
    diff_max: float
    pattern_corr: float


def compare_surface_fields(reference: FieldWindow, forecast: FieldWindow,
                           t: int, wet: np.ndarray) -> List[SpatialComparison]:
    """Compare the surface-level u, v and ζ maps at snapshot ``t``."""
    surface = -1  # top sigma layer (depth axis is bottom→surface)
    fields = {
        "u": (reference.u3[t, :, :, surface], forecast.u3[t, :, :, surface]),
        "v": (reference.v3[t, :, :, surface], forecast.v3[t, :, :, surface]),
        "zeta": (reference.zeta[t], forecast.zeta[t]),
    }
    out = []
    for var, (ref, pred) in fields.items():
        r = ref[wet].astype(np.float64)
        p = pred[wet].astype(np.float64)
        d = p - r
        corr = float(np.corrcoef(r, p)[0, 1]) if np.std(r) > 0 else float("nan")
        out.append(SpatialComparison(
            variable=var,
            ref_min=float(r.min()), ref_max=float(r.max()),
            pred_min=float(p.min()), pred_max=float(p.max()),
            diff_mae=float(np.abs(d).mean()), diff_max=float(np.abs(d).max()),
            pattern_corr=corr,
        ))
    return out
