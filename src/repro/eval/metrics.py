"""Accuracy metrics: per-variable MAE and RMSE in physical units.

Reproduces the reporting of the paper's Table III/IV: errors of u, v, w
[m/s] and ζ [m] between surrogate forecasts and solver truth, averaged
over test windows, wet cells only (land cells are identically zero in
both and would deflate the error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..workflow.forecast import FieldWindow

__all__ = ["VariableErrors", "compute_errors", "compute_errors_many",
           "aggregate_errors"]

VAR_UNITS = {"u": "m/s", "v": "m/s", "w": "m/s", "zeta": "m"}


@dataclass(frozen=True)
class VariableErrors:
    """MAE/RMSE for the four learned variables."""

    mae: Dict[str, float]
    rmse: Dict[str, float]

    def row(self, kind: str) -> List[float]:
        src = self.mae if kind == "mae" else self.rmse
        return [src["u"], src["v"], src["w"], src["zeta"]]


def _masked_errors(pred: np.ndarray, truth: np.ndarray,
                   wet: Optional[np.ndarray]) -> Dict[str, float]:
    diff = pred.astype(np.float64) - truth.astype(np.float64)
    if wet is not None:
        # broadcast the (H, W) mask over time and depth axes
        if diff.ndim == 4:            # (T, H, W, D)
            m = wet[None, :, :, None]
        else:                         # (T, H, W)
            m = wet[None, :, :]
        diff = diff[np.broadcast_to(m, diff.shape)]
    return {
        "mae": float(np.abs(diff).mean()),
        "rmse": float(np.sqrt((diff ** 2).mean())),
    }


def compute_errors(pred: FieldWindow, truth: FieldWindow,
                   wet: Optional[np.ndarray] = None,
                   skip_initial: bool = True) -> VariableErrors:
    """Errors of one forecast window against the reference.

    Parameters
    ----------
    skip_initial: exclude slot 0, which is the known initial condition
        (not a prediction).
    """
    s = slice(1, None) if skip_initial else slice(None)
    pairs = {
        "u": (pred.u3[s], truth.u3[s]),
        "v": (pred.v3[s], truth.v3[s]),
        "w": (pred.w3[s], truth.w3[s]),
        "zeta": (pred.zeta[s], truth.zeta[s]),
    }
    mae, rmse = {}, {}
    for var, (p, t) in pairs.items():
        e = _masked_errors(p, t, wet)
        mae[var] = e["mae"]
        rmse[var] = e["rmse"]
    return VariableErrors(mae, rmse)


def compute_errors_many(preds: Sequence[FieldWindow],
                        truths: Sequence[FieldWindow],
                        wet: Optional[np.ndarray] = None,
                        skip_initial: bool = True) -> VariableErrors:
    """Aggregate errors of many forecast windows at once.

    The natural companion of the batched forecast path: score the N
    results of :meth:`~repro.workflow.forecast.SurrogateForecaster.forecast_batch`
    against their references in one call.
    """
    if len(preds) != len(truths):
        raise ValueError(
            f"{len(preds)} predictions but {len(truths)} references")
    return aggregate_errors([
        compute_errors(p, t, wet, skip_initial)
        for p, t in zip(preds, truths)
    ])


def aggregate_errors(errors: Sequence[VariableErrors]) -> VariableErrors:
    """Average errors over many test windows (paper averages the year)."""
    if not errors:
        raise ValueError("no error records to aggregate")
    vars_ = ("u", "v", "w", "zeta")
    mae = {v: float(np.mean([e.mae[v] for e in errors])) for v in vars_}
    rmse = {v: float(np.mean([e.rmse[v] for e in errors])) for v in vars_}
    return VariableErrors(mae, rmse)
