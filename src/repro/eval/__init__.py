"""Evaluation: accuracy metrics, series/spatial comparison, reporting."""

from .metrics import (
    VariableErrors,
    aggregate_errors,
    compute_errors,
    compute_errors_many,
)
from .timeseries import (
    PAPER_LOCATIONS,
    LocationSeries,
    SpatialComparison,
    compare_surface_fields,
    extract_series,
    series_skill,
)
from .reporting import format_sci, format_series, format_table
from .errorgrowth import ErrorGrowth, error_growth

__all__ = [
    "VariableErrors",
    "compute_errors",
    "compute_errors_many",
    "aggregate_errors",
    "LocationSeries",
    "extract_series",
    "series_skill",
    "SpatialComparison",
    "compare_surface_fields",
    "PAPER_LOCATIONS",
    "format_table",
    "format_series",
    "format_sci",
    "ErrorGrowth",
    "error_growth",
]
