"""Plain-text table rendering for benchmark reports.

Every benchmark prints the rows/series of its paper table or figure;
this module keeps the formatting consistent and diff-friendly
(EXPERIMENTS.md embeds these tables verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_sci", "format_series"]


def format_sci(x: float, digits: int = 2) -> str:
    """Scientific notation like the paper's tables (1.80E-02)."""
    return f"{x:.{digits}E}"


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(fmt_row(row))
    return "\n".join(lines)


def format_series(xs: Sequence, ys: Sequence, x_label: str = "x",
                  y_label: str = "y", title: Optional[str] = None) -> str:
    """Render an (x, y) series as a two-column table (figure data)."""
    return format_table(
        [x_label, y_label],
        [[x, y] for x, y in zip(xs, ys)],
        title=title,
    )
