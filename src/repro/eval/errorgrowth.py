"""Forecast error growth with lead time.

The paper's Fig. 6 visually argues that surrogate error does not blow
up over a 12-day rollout; this module quantifies that claim: per-step
RMSE curves for each variable, an exponential growth-rate fit, and a
saturation check against the climatological (variance) bound — the
standard predictability toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..workflow.forecast import FieldWindow

__all__ = ["ErrorGrowth", "error_growth"]


@dataclass(frozen=True)
class ErrorGrowth:
    """Lead-time error diagnostics for one variable."""

    variable: str
    rmse_by_step: np.ndarray          # (T−1,) from lead 1
    climatology_rmse: float           # saturation level (√2 · σ_ref)
    growth_rate_per_step: float       # slope of log-RMSE vs lead

    @property
    def normalized(self) -> np.ndarray:
        """RMSE as a fraction of the saturation level."""
        return self.rmse_by_step / max(self.climatology_rmse, 1e-12)

    @property
    def saturated(self) -> bool:
        """True when the final lead has reached the climatological bound
        (i.e. the forecast is no better than a random draw)."""
        return bool(self.normalized[-1] >= 1.0)


def _per_step_rmse(pred: np.ndarray, truth: np.ndarray,
                   wet: Optional[np.ndarray]) -> np.ndarray:
    diff = pred.astype(np.float64) - truth.astype(np.float64)
    T = diff.shape[0]
    out = np.empty(T)
    for t in range(T):
        d = diff[t]
        if wet is not None:
            m = wet if d.ndim == 2 else wet[..., None]
            d = d[np.broadcast_to(m, d.shape)]
        out[t] = np.sqrt(np.mean(d ** 2))
    return out


def error_growth(pred: FieldWindow, truth: FieldWindow,
                 wet: Optional[np.ndarray] = None
                 ) -> Dict[str, ErrorGrowth]:
    """Error-growth diagnostics for every variable of a forecast.

    Lead 0 (the shared initial condition) is excluded.  The growth rate
    is the least-squares slope of log RMSE over the first half of the
    horizon, before saturation flattens the curve.
    """
    pairs = {
        "u": (pred.u3, truth.u3),
        "v": (pred.v3, truth.v3),
        "w": (pred.w3, truth.w3),
        "zeta": (pred.zeta, truth.zeta),
    }
    out: Dict[str, ErrorGrowth] = {}
    for var, (p, r) in pairs.items():
        rmse = _per_step_rmse(p[1:], r[1:], wet)
        ref = r[1:].astype(np.float64)
        if wet is not None:
            m = wet if ref.ndim == 3 else wet[..., None]
            ref_flat = ref[:, np.broadcast_to(m, ref.shape[1:])]
        else:
            ref_flat = ref.reshape(ref.shape[0], -1)
        clim = float(np.sqrt(2.0) * ref_flat.std())

        half = max(2, len(rmse) // 2)
        leads = np.arange(1, half + 1, dtype=np.float64)
        safe = np.log(np.maximum(rmse[:half], 1e-12))
        slope = float(np.polyfit(leads, safe, 1)[0])

        out[var] = ErrorGrowth(
            variable=var,
            rmse_by_step=rmse,
            climatology_rmse=clim,
            growth_rate_per_step=slope,
        )
    return out
