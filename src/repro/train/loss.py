"""Loss functions for surrogate training.

The episode loss is the MSE over normalised fields, with the 3-D
velocity volume and the 2-D free-surface plane weighted so neither
dominates purely by cell count (the ζ plane has D× fewer cells than the
velocity volume).
"""

from __future__ import annotations

from ..tensor import Tensor

__all__ = ["mse", "mae", "episode_loss"]


def mse(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    d = pred - target
    return (d * d).mean()


def mae(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error (used for reporting, Table III)."""
    return (pred - target).abs().mean()


def episode_loss(pred3d: Tensor, pred2d: Tensor,
                 target3d: Tensor, target2d: Tensor,
                 weight_2d: float = 1.0) -> Tensor:
    """Combined episode training loss.

    Parameters
    ----------
    pred3d, target3d: (B, 3, H, W, D, T) normalised velocity volumes.
    pred2d, target2d: (B, 1, H, W, T) normalised ζ planes.
    weight_2d: relative weight of the free-surface term.
    """
    return mse(pred3d, target3d) + weight_2d * mse(pred2d, target2d)
