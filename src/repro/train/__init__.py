"""Training: optimisers, schedules, losses, trainer, checkpointing."""

from .optim import Adam, AdamW, Optimizer, SGD, clip_grad_norm
from .schedule import ConstantLR, CosineWarmup, LRSchedule, StepLR
from .loss import episode_loss, mae, mse
from .checkpoint import load_checkpoint, load_model_like, save_checkpoint
from .trainer import EpochStats, Trainer, TrainerConfig
from .parallel import DataParallelTrainer, shard_batch

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "LRSchedule",
    "ConstantLR",
    "StepLR",
    "CosineWarmup",
    "mse",
    "mae",
    "episode_loss",
    "save_checkpoint",
    "load_checkpoint",
    "load_model_like",
    "Trainer",
    "TrainerConfig",
    "EpochStats",
    "DataParallelTrainer",
    "shard_batch",
]
