"""Optimisers: SGD (momentum), Adam, AdamW, and gradient clipping.

The surrogate trains with Adam-family optimisers (standard for Swin
Transformers); SGD is kept for ablations and tests.  All state lives in
plain NumPy arrays keyed by parameter identity, so optimisers can be
checkpointed alongside model weights.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is ≤ ``max_norm``.

    Returns the pre-clip norm (useful for divergence monitoring).
    """
    params = [p for p in params if p.grad is not None]
    if not params:
        return 0.0
    total = np.sqrt(sum(float((p.grad.astype(np.float64) ** 2).sum())
                        for p in params))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad *= scale
    return float(total)


class Optimizer:
    """Base optimiser over a fixed parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = float(lr)
        self.t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict:
        return {"lr": self.lr, "t": self.t}

    def load_state_dict(self, state: Dict) -> None:
        self.lr = float(state["lr"])
        self.t = int(state["t"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for p, v in zip(self.params, self.velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self.t
        bc2 = 1.0 - b2 ** self.t
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        bc1 = 1.0 - b1 ** self.t
        bc2 = 1.0 - b2 ** self.t
        for p, m, v in zip(self.params, self.m, self.v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)
