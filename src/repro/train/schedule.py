"""Learning-rate schedules: constant, step decay, cosine with warmup."""

from __future__ import annotations

import math
from typing import Optional

from .optim import Optimizer

__all__ = ["LRSchedule", "ConstantLR", "StepLR", "CosineWarmup"]


class LRSchedule:
    """Base schedule: call :meth:`step` once per optimiser update."""

    def __init__(self, optimizer: Optimizer, base_lr: Optional[float] = None):
        self.optimizer = optimizer
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.updates = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.updates += 1
        lr = self.lr_at(self.updates)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRSchedule):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class StepLR(LRSchedule):
    """Multiply the LR by ``gamma`` every ``step_size`` updates."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.5, base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.step_size = step_size
        self.gamma = gamma

    def lr_at(self, step: int) -> float:
        return self.base_lr * self.gamma ** (step // self.step_size)


class CosineWarmup(LRSchedule):
    """Linear warmup to ``base_lr`` then cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int,
                 total_steps: int, min_lr: float = 0.0,
                 base_lr: Optional[float] = None):
        super().__init__(optimizer, base_lr)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / max(1, self.warmup_steps)
        frac = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        frac = min(max(frac, 0.0), 1.0)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + math.cos(math.pi * frac))
