"""Simulated data-parallel training (paper §IV-G).

The paper trains the surrogate data-parallel on up to 32 A100s:
replicas consume disjoint batch shards and allreduce gradients each
step.  :class:`DataParallelTrainer` reproduces that execution model
in-process: W simulated workers share one set of parameters, each
computes gradients on its shard, and the shard gradients are averaged
through a byte-accounting :class:`~repro.hpc.mpi.SimComm` allreduce —
so the *semantics* (identical to large-batch training) and the
*communication volume* (what the Fig. 10 scaling model charges for)
are both faithful.

The equivalence `DataParallel(W shards) == single step on the
concatenated batch` is exact for loss functions that average over the
batch axis, and is asserted in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..data.loader import Batch
from ..hpc.mpi import SimComm
from ..swin.model import CoastalSurrogate
from .optim import Optimizer, clip_grad_norm
from .trainer import Trainer, TrainerConfig

__all__ = ["shard_batch", "DataParallelTrainer"]


def shard_batch(batch: Batch, n_workers: int) -> List[Batch]:
    """Split a batch along the batch axis into per-worker shards.

    The batch size must be divisible by ``n_workers`` (as in real DDP,
    where the global batch is worker-count × per-GPU batch).
    """
    B = batch.batch_size
    if B % n_workers:
        raise ValueError(
            f"batch size {B} not divisible by {n_workers} workers")
    per = B // n_workers
    shards = []
    for w in range(n_workers):
        sl = slice(w * per, (w + 1) * per)
        shards.append(Batch(
            x3d=batch.x3d[sl], x2d=batch.x2d[sl],
            y3d=batch.y3d[sl], y2d=batch.y2d[sl],
            starts=batch.starts[sl],
        ))
    return shards


class DataParallelTrainer(Trainer):
    """Trainer whose steps run as W gradient-allreducing workers.

    Parameters
    ----------
    model: shared surrogate (replicas share parameters in-process; the
        allreduce is still performed on real gradient arrays so the
        communication volume is genuine).
    n_workers: simulated GPU count.
    """

    def __init__(self, model: CoastalSurrogate, config: TrainerConfig,
                 n_workers: int, optimizer: Optional[Optimizer] = None):
        super().__init__(model, config, optimizer=optimizer)
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers
        self.comm = SimComm(n_workers)
        self.grad_bytes_reduced = 0

    # ------------------------------------------------------------------
    def _shard_gradients(self, shard: Batch) -> Dict[str, np.ndarray]:
        """Forward+backward one shard; return and clear its gradients."""
        self.model.zero_grad()
        loss = self._forward_loss(shard)
        loss.backward()
        grads = {}
        for name, p in self.model.named_parameters():
            grads[name] = (p.grad.copy() if p.grad is not None
                           else np.zeros_like(p.data))
        self._last_loss = float(loss.item())
        return grads

    def _allreduce(self, shard_grads: Sequence[Dict[str, np.ndarray]]
                   ) -> Dict[str, np.ndarray]:
        """Average gradients across workers through the communicator.

        Implemented as a ring: each worker contributes its buffer once
        per reduce and once per broadcast — 2·(W−1)/W of the payload per
        worker, the textbook ring-allreduce volume.
        """
        W = len(shard_grads)
        avg: Dict[str, np.ndarray] = {}
        for name in shard_grads[0]:
            stack = [g[name] for g in shard_grads]
            # volume accounting: 2·(W−1) chunk transfers of size 1/W
            nbytes = stack[0].nbytes
            if W > 1:
                moved = 2 * (W - 1) * (nbytes // W + 1)
                self.comm.bytes_sent += moved
                self.comm.n_messages += 2 * (W - 1)
                self.grad_bytes_reduced += moved
            avg[name] = np.mean(stack, axis=0)
        return avg

    # ------------------------------------------------------------------
    def train_step(self, batch: Batch) -> float:
        """One data-parallel update; returns the mean shard loss."""
        self.model.train()
        shards = shard_batch(batch, self.n_workers)
        shard_grads = []
        losses = []
        for shard in shards:
            shard_grads.append(self._shard_gradients(shard))
            losses.append(self._last_loss)

        mean_grads = self._allreduce(shard_grads)
        for name, p in self.model.named_parameters():
            p.grad = mean_grads[name]

        if self.cfg.grad_clip > 0:
            clip_grad_norm(self.optimizer.params, self.cfg.grad_clip)
        self.optimizer.step()
        if self.schedule is not None:
            self.schedule.step()
        return float(np.mean(losses))
