"""Training loop for the coastal surrogate.

Drives the :class:`~repro.swin.CoastalSurrogate` over a
:class:`~repro.data.DataLoader`: forward in fp32 on fp16-staged batches
(the paper's mixed-precision path), episode MSE loss, gradient
clipping, Adam-family update, per-epoch validation, and wall-clock /
throughput accounting that feeds the HPC benchmarks (Fig. 9/10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.loader import Batch, DataLoader
from ..swin.model import CoastalSurrogate
from ..tensor import Tensor, no_grad
from .checkpoint import load_checkpoint, save_checkpoint
from .loss import episode_loss
from .optim import Adam, Optimizer, clip_grad_norm
from .schedule import LRSchedule

__all__ = ["TrainerConfig", "EpochStats", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Hyperparameters of a training run."""

    lr: float = 1e-3
    epochs: int = 30                 # the paper trains both models 30 epochs
    grad_clip: float = 1.0
    weight_2d: float = 1.0
    log_every: int = 10
    checkpoint_path: Optional[str] = None


@dataclass
class EpochStats:
    """Aggregates for one epoch."""

    epoch: int
    train_loss: float
    val_loss: Optional[float]
    seconds: float
    instances: int

    @property
    def throughput(self) -> float:
        """Training instances per second (Fig. 9/10 metric)."""
        return self.instances / self.seconds if self.seconds > 0 else 0.0


class Trainer:
    """Fit a surrogate on episode batches."""

    def __init__(self, model: CoastalSurrogate, config: TrainerConfig,
                 optimizer: Optional[Optimizer] = None,
                 schedule: Optional[LRSchedule] = None):
        self.model = model
        self.cfg = config
        self.optimizer = optimizer or Adam(model.parameters(), lr=config.lr)
        self.schedule = schedule
        self.history: List[EpochStats] = []

    # ------------------------------------------------------------------
    def _forward_loss(self, batch: Batch) -> Tensor:
        # fp16-staged batches are promoted to fp32 for compute — the
        # mixed-precision contract of the paper's training pipeline.
        x3d = Tensor(batch.x3d.astype(np.float32))
        x2d = Tensor(batch.x2d.astype(np.float32))
        y3d = Tensor(batch.y3d.astype(np.float32))
        y2d = Tensor(batch.y2d.astype(np.float32))
        p3d, p2d = self.model(x3d, x2d)
        return episode_loss(p3d, p2d, y3d, y2d, self.cfg.weight_2d)

    def train_step(self, batch: Batch) -> float:
        """One optimiser update; returns the batch loss."""
        self.model.train()
        self.model.zero_grad()
        loss = self._forward_loss(batch)
        loss.backward()
        if self.cfg.grad_clip > 0:
            clip_grad_norm(self.optimizer.params, self.cfg.grad_clip)
        self.optimizer.step()
        if self.schedule is not None:
            self.schedule.step()
        return float(loss.item())

    def evaluate(self, loader: DataLoader) -> float:
        """Mean episode loss over a loader (no gradients)."""
        self.model.eval()
        losses = []
        with no_grad():
            for batch in loader:
                losses.append(float(self._forward_loss(batch).item()))
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    def fit(self, train_loader: DataLoader,
            val_loader: Optional[DataLoader] = None,
            epochs: Optional[int] = None,
            on_epoch: Optional[Callable[[EpochStats], None]] = None
            ) -> List[EpochStats]:
        """Run the full training loop; returns per-epoch statistics."""
        n_epochs = epochs if epochs is not None else self.cfg.epochs
        for epoch in range(n_epochs):
            t0 = time.perf_counter()
            losses = []
            instances = 0
            for step, batch in enumerate(train_loader):
                losses.append(self.train_step(batch))
                instances += batch.batch_size
            seconds = time.perf_counter() - t0
            val = self.evaluate(val_loader) if val_loader is not None else None
            stats = EpochStats(
                epoch=epoch,
                train_loss=float(np.mean(losses)) if losses else float("nan"),
                val_loss=val,
                seconds=seconds,
                instances=instances,
            )
            self.history.append(stats)
            if on_epoch is not None:
                on_epoch(stats)
            if self.cfg.checkpoint_path:
                self.save(self.cfg.checkpoint_path)
        return self.history

    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        save_checkpoint(path, self.model, self.optimizer,
                        extra={"epochs_done": len(self.history)})

    def load(self, path: str | Path) -> Dict:
        return load_checkpoint(path, self.model, self.optimizer)
