"""Model/optimiser checkpointing to compressed ``.npz`` archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..nn.module import Module
from .optim import Optimizer

__all__ = ["save_checkpoint", "load_checkpoint", "load_model_like"]

_META_KEY = "__meta__"


def save_checkpoint(path: str | Path, model: Module,
                    optimizer: Optional[Optimizer] = None,
                    extra: Optional[Dict] = None) -> None:
    """Write model weights (+ optimiser scalars + user metadata)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {f"model/{k}": v for k, v in model.state_dict().items()}
    meta: Dict = {"extra": extra or {}}
    if optimizer is not None:
        meta["optimizer"] = optimizer.state_dict()
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_model_like(path: str | Path, like: Module) -> Module:
    """A fresh model of ``like``'s class/config with weights from ``path``.

    The serving deploy path must never mutate the live model — in-flight
    requests are pinned to the weights that admitted them — so a new
    checkpoint is always restored into a *new* instance, built from the
    running model's class and config (``type(like)(like.config)``), and
    the live one is left untouched.  Raises whatever
    :func:`load_checkpoint` raises on a missing or mismatched archive,
    before anything serving-visible has changed.
    """
    model = type(like)(like.config)
    load_checkpoint(path, model)
    return model


def load_checkpoint(path: str | Path, model: Module,
                    optimizer: Optional[Optimizer] = None) -> Dict:
    """Restore weights in place; returns the stored metadata dict."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as z:
        state = {
            k[len("model/"):]: z[k] for k in z.files if k.startswith("model/")
        }
        meta = json.loads(bytes(z[_META_KEY]).decode("utf-8")) \
            if _META_KEY in z.files else {}
    model.load_state_dict(state)
    if optimizer is not None and "optimizer" in meta:
        optimizer.load_state_dict(meta["optimizer"])
    return meta
