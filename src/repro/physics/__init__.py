"""Physics-based verification of surrogate forecasts (paper §III-E)."""

from .residual import (
    depth_average,
    residual_series,
    residual_series_batch,
    water_mass_residual,
)
from .verifier import (
    OCEANOGRAPHY_ACCEPTED_THRESHOLD,
    PAPER_THRESHOLDS,
    VerificationResult,
    Verifier,
)

__all__ = [
    "water_mass_residual",
    "residual_series",
    "residual_series_batch",
    "depth_average",
    "Verifier",
    "VerificationResult",
    "OCEANOGRAPHY_ACCEPTED_THRESHOLD",
    "PAPER_THRESHOLDS",
]
