"""Physics-based result verification (paper §III-E).

The :class:`Verifier` checks whether a surrogate forecast adheres to
the water-mass conservation law: the mean per-cell residual over wet
cells must stay below a threshold.  The hybrid workflow consults the
verifier after every surrogate episode and falls back to the ROMS-like
solver on failure ("early error detection during the calculation",
§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..ocean.grid import CurvilinearGrid
from .residual import residual_series

__all__ = ["VerificationResult", "Verifier", "OCEANOGRAPHY_ACCEPTED_THRESHOLD",
           "PAPER_THRESHOLDS"]

#: "Water mass residuals … smaller than 5.0e-4 m/s are typically
#: considered acceptable by oceanographers" (paper §IV-D).
OCEANOGRAPHY_ACCEPTED_THRESHOLD = 5.0e-4

#: Threshold sweep of the paper's Fig. 7 / Fig. 8 (m/s).
PAPER_THRESHOLDS = (3.0e-4, 3.5e-4, 4.0e-4, 4.5e-4, 5.0e-4, 5.5e-4)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one forecast episode."""

    mean_residual: float          # wet-cell mean over the episode [m/s]
    max_residual: float
    threshold: float
    passed: bool
    per_step_mean: np.ndarray     # (T−1,) mean residual of each transition

    def __repr__(self) -> str:
        tag = "PASS" if self.passed else "FAIL"
        return (f"VerificationResult({tag}, mean={self.mean_residual:.3e}, "
                f"thr={self.threshold:.1e})")


class Verifier:
    """Thresholded mass-conservation check on surrogate forecasts.

    Parameters
    ----------
    grid, depth: domain geometry (wet mask derived from depth).
    threshold: pass threshold on the episode-mean residual [m/s].
    dt: snapshot interval of the forecasts to be checked [s].
    """

    def __init__(self, grid: CurvilinearGrid, depth: np.ndarray,
                 threshold: float = OCEANOGRAPHY_ACCEPTED_THRESHOLD,
                 dt: float = 1800.0):
        self.grid = grid
        self.depth = np.asarray(depth)
        self.wet = self.depth > 0.0
        self.threshold = float(threshold)
        self.dt = float(dt)

    def residuals(self, zeta_seq: np.ndarray, u3_seq: np.ndarray,
                  v3_seq: np.ndarray) -> np.ndarray:
        """(T−1, H, W) residual fields for a forecast."""
        return residual_series(self.grid, self.depth, zeta_seq,
                               u3_seq, v3_seq, self.dt, self.wet)

    def verify(self, zeta_seq: np.ndarray, u3_seq: np.ndarray,
               v3_seq: np.ndarray,
               threshold: Optional[float] = None) -> VerificationResult:
        """Verify one forecast episode against the threshold."""
        thr = self.threshold if threshold is None else float(threshold)
        res = self.residuals(zeta_seq, u3_seq, v3_seq)
        wet = self.wet
        per_step = res[:, wet].mean(axis=1)
        mean = float(per_step.mean())
        return VerificationResult(
            mean_residual=mean,
            max_residual=float(res[:, wet].max()),
            threshold=thr,
            passed=mean < thr,
            per_step_mean=per_step,
        )

    def pass_rate(self, episodes: Sequence[VerificationResult] | Sequence[float],
                  threshold: Optional[float] = None) -> float:
        """Fraction of episodes whose mean residual beats the threshold.

        Accepts either :class:`VerificationResult` objects or raw mean
        residual floats, enabling cheap threshold sweeps (Fig. 7) from a
        single residual computation.
        """
        thr = self.threshold if threshold is None else float(threshold)
        values = [
            e.mean_residual if isinstance(e, VerificationResult) else float(e)
            for e in episodes
        ]
        if not values:
            raise ValueError("no episodes to evaluate")
        return float(np.mean([v < thr for v in values]))
