"""Physics-based result verification (paper §III-E).

The :class:`Verifier` checks whether a surrogate forecast adheres to
the water-mass conservation law: the mean per-cell residual over wet
cells must stay below a threshold.  The hybrid workflow consults the
verifier after every surrogate episode and falls back to the ROMS-like
solver on failure ("early error detection during the calculation",
§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..ocean.grid import CurvilinearGrid
from .residual import residual_series, residual_series_batch

__all__ = ["VerificationResult", "Verifier", "OCEANOGRAPHY_ACCEPTED_THRESHOLD",
           "PAPER_THRESHOLDS"]

#: "Water mass residuals … smaller than 5.0e-4 m/s are typically
#: considered acceptable by oceanographers" (paper §IV-D).
OCEANOGRAPHY_ACCEPTED_THRESHOLD = 5.0e-4

#: Threshold sweep of the paper's Fig. 7 / Fig. 8 (m/s).
PAPER_THRESHOLDS = (3.0e-4, 3.5e-4, 4.0e-4, 4.5e-4, 5.0e-4, 5.5e-4)


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of verifying one forecast episode."""

    mean_residual: float          # wet-cell mean over the episode [m/s]
    max_residual: float
    threshold: float
    passed: bool
    per_step_mean: np.ndarray     # (T−1,) mean residual of each transition

    def __repr__(self) -> str:
        tag = "PASS" if self.passed else "FAIL"
        return (f"VerificationResult({tag}, mean={self.mean_residual:.3e}, "
                f"thr={self.threshold:.1e})")


class Verifier:
    """Thresholded mass-conservation check on surrogate forecasts.

    Parameters
    ----------
    grid, depth: domain geometry (wet mask derived from depth).
    threshold: pass threshold on the episode-mean residual [m/s].
    dt: snapshot interval of the forecasts to be checked [s].
    """

    def __init__(self, grid: CurvilinearGrid, depth: np.ndarray,
                 threshold: float = OCEANOGRAPHY_ACCEPTED_THRESHOLD,
                 dt: float = 1800.0):
        self.grid = grid
        self.depth = np.asarray(depth)
        self.wet = self.depth > 0.0
        self.threshold = float(threshold)
        self.dt = float(dt)

    def residuals(self, zeta_seq: np.ndarray, u3_seq: np.ndarray,
                  v3_seq: np.ndarray) -> np.ndarray:
        """(T−1, H, W) residual fields for a forecast."""
        return residual_series(self.grid, self.depth, zeta_seq,
                               u3_seq, v3_seq, self.dt, self.wet)

    def verify(self, zeta_seq: np.ndarray, u3_seq: np.ndarray,
               v3_seq: np.ndarray,
               threshold: Optional[float] = None) -> VerificationResult:
        """Verify one forecast episode against the threshold."""
        return self.verify_batch([zeta_seq], [u3_seq], [v3_seq],
                                 threshold)[0]

    def verify_batch(self, zeta_seqs: Sequence[np.ndarray],
                     u3_seqs: Sequence[np.ndarray],
                     v3_seqs: Sequence[np.ndarray],
                     threshold: Optional[float] = None
                     ) -> List[VerificationResult]:
        """Verify N forecast episodes in one vectorised residual pass.

        All episodes must share the verifier's (H, W) geometry; the
        residual fields of every episode are computed in a single
        batched call, so the hybrid gate does not re-serialise a
        batched surrogate forward.
        """
        thr = self.threshold if threshold is None else float(threshold)
        res = residual_series_batch(
            self.grid, self.depth,
            np.stack([np.asarray(z) for z in zeta_seqs]),
            np.stack([np.asarray(u) for u in u3_seqs]),
            np.stack([np.asarray(v) for v in v3_seqs]),
            self.dt, self.wet)
        res_wet = res[:, :, self.wet]               # (N, T−1, n_wet)
        per_step = res_wet.mean(axis=2)             # (N, T−1)
        means = per_step.mean(axis=1)
        maxes = res_wet.max(axis=(1, 2))
        return [
            VerificationResult(
                mean_residual=float(m),
                max_residual=float(mx),
                threshold=thr,
                passed=bool(m < thr),
                per_step_mean=ps,
            )
            for m, mx, ps in zip(means, maxes, per_step)
        ]

    def pass_rate(self, episodes: Sequence[VerificationResult] | Sequence[float],
                  threshold: Optional[float] = None) -> float:
        """Fraction of episodes whose mean residual beats the threshold.

        Accepts either :class:`VerificationResult` objects or raw mean
        residual floats, enabling cheap threshold sweeps (Fig. 7) from a
        single residual computation.
        """
        thr = self.threshold if threshold is None else float(threshold)
        values = [
            e.mean_residual if isinstance(e, VerificationResult) else float(e)
            for e in episodes
        ]
        if not values:
            raise ValueError("no episodes to evaluate")
        return float(np.mean([v < thr for v in values]))
