"""Water-mass conservation residual (paper Eq. 4–5).

For each horizontal grid cell Ω with contour Γ the conservation of mass
requires

    ∂/∂t ∫_Ω (h + ζ) dΩ  =  −∮_Γ (h + ζ) u · n dΓ

(the paper writes the boundary integral with its sign absorbed).  The
verification metric is the absolute residual of the two sides,
normalised by the cell area so it carries units of m/s — the same units
as the paper's thresholds (3e-4 … 5.5e-4 m/s).

Inputs are surrogate (or solver) outputs at cell centres; face
transports are reconstructed by averaging centre velocities onto the
C-grid faces, matching how the solver computes its fluxes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..ocean.grid import CurvilinearGrid

__all__ = ["water_mass_residual", "depth_average", "residual_series",
           "residual_series_batch"]


def depth_average(field3d: np.ndarray, axis: int = -1) -> np.ndarray:
    """Depth-average a (…, D) field over uniform sigma layers."""
    return np.asarray(field3d).mean(axis=axis)


def water_mass_residual(grid: CurvilinearGrid, depth: np.ndarray,
                        zeta_prev: np.ndarray, zeta_next: np.ndarray,
                        u_bar: np.ndarray, v_bar: np.ndarray,
                        dt: float,
                        wet: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-cell |mass residual| in m/s per snapshot transition.

    All field arguments accept arbitrary leading axes — (H, W),
    (T, H, W) and (N, T, H, W) inputs vectorise in one call.

    Parameters
    ----------
    grid: horizontal grid (metric terms).
    depth: (H, W) bathymetry h.
    zeta_prev, zeta_next: (…, H, W) free surface at t and t+dt.
    u_bar, v_bar: (…, H, W) depth-averaged velocities at cell centres,
        representative of the interval (callers pass the t+dt fields).
    dt: snapshot interval [s].
    wet: optional (H, W) wet mask; land cells return residual 0.

    Returns
    -------
    (…, H, W) array of non-negative residuals [m/s].
    """
    if wet is None:
        wet = depth > 0.0

    zeta_mid = 0.5 * (zeta_prev + zeta_next)
    H = np.maximum(depth + zeta_mid, 0.0)

    # centre velocities → face transports (C-grid averaging)
    Hu_face = grid.center_to_u(H * u_bar)          # (…, H, W+1)
    Hv_face = grid.center_to_v(H * v_bar)          # (…, H+1, W)

    # faces adjacent to land carry no transport
    wet_u = np.zeros(wet.shape[:-1] + (wet.shape[-1] + 1,), dtype=bool)
    wet_u[:, 1:-1] = wet[:, :-1] & wet[:, 1:]
    wet_u[:, 0] = wet[:, 0]
    wet_u[:, -1] = wet[:, -1]
    wet_v = np.zeros((wet.shape[-2] + 1,) + wet.shape[-1:], dtype=bool)
    wet_v[1:-1, :] = wet[:-1, :] & wet[1:, :]
    wet_v[0, :] = wet[0, :]
    wet_v[-1, :] = wet[-1, :]
    Hu_face = np.where(wet_u, Hu_face, 0.0)
    Hv_face = np.where(wet_v, Hv_face, 0.0)

    div = grid.flux_divergence(Hu_face, Hv_face)   # m/s per cell

    dzdt = (zeta_next - zeta_prev) / dt
    return np.where(wet, np.abs(dzdt + div), 0.0)


def residual_series(grid: CurvilinearGrid, depth: np.ndarray,
                    zeta_seq: np.ndarray, u3_seq: np.ndarray,
                    v3_seq: np.ndarray, dt: float,
                    wet: Optional[np.ndarray] = None
                    ) -> np.ndarray:
    """Residual fields for a forecast sequence.

    Parameters
    ----------
    zeta_seq: (T, H, W); u3_seq, v3_seq: (T, H, W, D).
    dt: snapshot interval.

    Returns
    -------
    (T−1, H, W) residuals for each transition t → t+1.
    """
    return residual_series_batch(grid, depth, zeta_seq[None], u3_seq[None],
                                 v3_seq[None], dt, wet)[0]


def residual_series_batch(grid: CurvilinearGrid, depth: np.ndarray,
                          zeta_seq: np.ndarray, u3_seq: np.ndarray,
                          v3_seq: np.ndarray, dt: float,
                          wet: Optional[np.ndarray] = None
                          ) -> np.ndarray:
    """Residual fields for N forecast sequences in one vectorised pass.

    Parameters
    ----------
    zeta_seq: (N, T, H, W); u3_seq, v3_seq: (N, T, H, W, D).
    dt: snapshot interval.

    Returns
    -------
    (N, T−1, H, W) residuals for each transition t → t+1 of each
    sequence.
    """
    T = zeta_seq.shape[1]
    if T < 2:
        raise ValueError("need at least two snapshots for a time derivative")
    zeta_seq = np.asarray(zeta_seq, dtype=np.float64)
    u_bar = depth_average(np.asarray(u3_seq, dtype=np.float64)[:, 1:])
    v_bar = depth_average(np.asarray(v3_seq, dtype=np.float64)[:, 1:])
    return water_mass_residual(grid, depth, zeta_seq[:, :-1],
                               zeta_seq[:, 1:], u_bar, v_bar, dt, wet)
